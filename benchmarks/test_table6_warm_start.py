"""Table 6: warm-start speedup for LR across datasets.

Paper reports 1.2×–3.4× speedups from reusing the previous λ-fit's
parameters as the next fit's initialization.
"""

from __future__ import annotations

import time

from _common import bench_splits, emit, load_bench_dataset, run_once

from repro import FairnessSpec, OmniFair
from repro.analysis import format_table
from repro.datasets import two_group_view
from repro.ml import LogisticRegression

EPSILON = 0.05
DATASETS = ["compas", "adult", "lsac", "bank"]


def _run():
    rows = []
    for name in DATASETS:
        data = load_bench_dataset(name)
        if name == "compas":
            data = two_group_view(data)
        train, val, _ = bench_splits(data)

        def fit(warm):
            of = OmniFair(
                LogisticRegression(max_iter=500, tol=1e-7),
                FairnessSpec("SP", EPSILON),
                warm_start=warm,
            )
            t0 = time.perf_counter()
            of.fit(train, val)
            return time.perf_counter() - t0

        cold = fit(False)
        warm = fit(True)
        rows.append((name, cold, warm, cold / warm if warm > 0 else 1.0))
    return rows


def test_table6_warm_start(benchmark):
    rows = run_once(_run, benchmark)
    emit(
        "table6_warm_start",
        format_table(
            ["Dataset", "No Warm Start (s)", "Warm Start (s)", "SpeedUp"],
            [
                [n, f"{c:.2f}", f"{w:.2f}", f"{c / w:.2f}x"]
                for n, c, w, _ in rows
            ],
            title=f"Table 6 — warm-start speedup (LR, SP eps={EPSILON})",
        ),
    )
    # warm start should help overall (paper: 1.2x-3.4x); allow per-dataset
    # noise but require a mean speedup
    speedups = [s for _, _, _, s in rows]
    assert sum(speedups) / len(speedups) > 1.0
