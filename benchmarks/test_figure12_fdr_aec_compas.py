"""Figure 12 (appendix): FDR and AEC trade-offs on COMPAS (LR).

Paper's finding: OmniFair reduces FDR difference (vs Celis, the only
baseline that can) and the customized AEC difference (no baseline can)
with little accuracy drop.
"""

from __future__ import annotations

from _common import bench_splits, emit, load_bench_dataset, run_once

from repro.analysis import baseline_frontier, format_series, omnifair_frontier
from repro.core.fairness_metrics import average_error_cost_parity
from repro.datasets import two_group_view
from repro.ml import LogisticRegression

EPSILONS = [0.02, 0.06, 0.15]


def _run():
    data = two_group_view(load_bench_dataset("compas"))
    train, val, test = bench_splits(data)
    lr = LogisticRegression(max_iter=150)
    return {
        "omnifair_fdr": omnifair_frontier(
            train, val, test, lr, metric="FDR", epsilons=EPSILONS,
            delta=0.02,
        ),
        "celis_fdr": baseline_frontier(
            "celis", train, val, test, metric="FDR", knobs=[0.06, 0.15]
        ),
        "omnifair_aec": omnifair_frontier(
            train, val, test, lr,
            metric_obj=average_error_cost_parity(1.0, 2.0),
            epsilons=EPSILONS,
        ),
    }


def test_figure12_fdr_aec_compas(benchmark):
    curves = run_once(_run, benchmark)
    lines = ["Figure 12 — FDR / AEC trade-offs on COMPAS (LR, test set)"]
    for name, pts in curves.items():
        lines.append(format_series(name, pts))
    emit("figure12_fdr_aec_compas", "\n".join(lines))

    assert curves["omnifair_fdr"], "FDR frontier must be nonempty"
    assert curves["omnifair_aec"], "AEC frontier must be nonempty"
    assert min(p.disparity for p in curves["omnifair_fdr"]) < 0.10
    assert min(p.disparity for p in curves["omnifair_aec"]) < 0.10
    for key in ("omnifair_fdr", "omnifair_aec"):
        accs = [p.accuracy for p in curves[key]]
        assert max(accs) - min(accs) < 0.12  # little accuracy drop
