"""Figure 13 (appendix): FDR and AEC trade-offs on LSAC (LR).

Same structure as Figure 12, on the high-accuracy LSAC regime.
"""

from __future__ import annotations

from _common import bench_splits, emit, load_bench_dataset, run_once

from repro.analysis import baseline_frontier, format_series, omnifair_frontier
from repro.core.fairness_metrics import average_error_cost_parity
from repro.ml import LogisticRegression

EPSILONS = [0.03, 0.08, 0.2]


def _run():
    data = load_bench_dataset("lsac")
    train, val, test = bench_splits(data)
    lr = LogisticRegression(max_iter=150)
    return {
        "omnifair_fdr": omnifair_frontier(
            train, val, test, lr, metric="FDR", epsilons=EPSILONS,
            delta=0.02,
        ),
        "celis_fdr": baseline_frontier(
            "celis", train, val, test, metric="FDR", knobs=[0.08, 0.2]
        ),
        "omnifair_aec": omnifair_frontier(
            train, val, test, lr,
            metric_obj=average_error_cost_parity(1.0, 2.0),
            epsilons=EPSILONS,
        ),
    }


def test_figure13_fdr_aec_lsac(benchmark):
    curves = run_once(_run, benchmark)
    lines = ["Figure 13 — FDR / AEC trade-offs on LSAC (LR, test set)"]
    for name, pts in curves.items():
        lines.append(format_series(name, pts))
    emit("figure13_fdr_aec_lsac", "\n".join(lines))

    assert curves["omnifair_fdr"]
    assert curves["omnifair_aec"]
    # LSAC stays in its high-accuracy band under both custom constraints
    for key in ("omnifair_fdr", "omnifair_aec"):
        assert max(p.accuracy for p in curves[key]) > 0.78
