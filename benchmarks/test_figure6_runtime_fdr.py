"""Figure 6: running time under an FDR constraint with LR.

Only Celis (among the baselines) supports FDR; the paper reports OmniFair
is 9×–150× faster.  Our scaled-down Celis grid still shows a clear
multiple.
"""

from __future__ import annotations

import time

from _common import bench_splits, emit, load_bench_dataset, run_once

from repro import FairnessSpec, OmniFair
from repro.analysis import format_table
from repro.baselines import CelisMetaAlgorithm
from repro.datasets import two_group_view
from repro.ml import LogisticRegression

EPSILON = 0.05
DATASETS = ["adult", "compas"]


def _run_timings():
    timings = {}
    for name in DATASETS:
        data = load_bench_dataset(name, n=2500 if name == "adult" else None)
        if name == "compas":
            data = two_group_view(data)
        train, val, _ = bench_splits(data)
        lr = LogisticRegression(max_iter=150)

        t0 = time.perf_counter()
        lr.clone().fit(train.X, train.y)
        timings[("Original", name)] = time.perf_counter() - t0

        t0 = time.perf_counter()
        OmniFair(
            lr.clone(), FairnessSpec("FDR", EPSILON), delta=0.02
        ).fit(train, val)
        timings[("OmniFair", name)] = time.perf_counter() - t0

        t0 = time.perf_counter()
        try:
            CelisMetaAlgorithm(
                metric="FDR", epsilon=EPSILON, grid_size=6
            ).fit(train, val)
            timings[("Celis", name)] = time.perf_counter() - t0
        except Exception:
            timings[("Celis", name)] = time.perf_counter() - t0
    return timings


def test_figure6_runtime_fdr(benchmark):
    timings = run_once(_run_timings, benchmark)
    methods = ["Original", "OmniFair", "Celis"]
    rows = [
        [m] + [f"{timings[(m, d)]:.2f}s" for d in DATASETS] for m in methods
    ]
    emit(
        "figure6_runtime_fdr",
        format_table(
            ["Method"] + DATASETS, rows,
            title=f"Figure 6 — running time, FDR eps={EPSILON}, LR "
                  "(only Celis supports FDR among baselines)",
        ),
    )
    for d in DATASETS:
        assert timings[("Celis", d)] > 1.5 * timings[("OmniFair", d)], (
            f"Celis should be a clear multiple slower on {d}"
        )
