"""Packaging metadata.

Kept in setup.py (rather than a [project] table) so legacy editable
installs work in offline environments that lack the `wheel` package
(PEP 517 editable builds need bdist_wheel); pyproject.toml carries the
build-system pin and tool configuration only.

The "dev" extra mirrors requirements-dev.txt, which CI installs and
caches against.
"""
from setuptools import find_packages, setup

setup(
    name="repro-omnifair",
    version="0.2.0",
    description=(
        "Declarative model-agnostic group fairness (OmniFair, SIGMOD'21) "
        "with compiled constraint kernels and a batched lambda-search engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        "dev": [
            "pytest>=8",
            "pytest-benchmark>=4",
            "hypothesis>=6",
            "ruff>=0.4",
        ],
    },
)
