"""Resilience end to end: chaos against the store, fitter, and service.

The ISSUE 8 acceptance story, exercised for real: injected faults land
on the same degradation paths as organic ones — a flaky disk reads as a
cache miss, dead pool workers degrade to bit-identical in-process fits,
a poisoned batch fails only its own waiters, expired requests answer
504 instead of occupying batch slots, overload sheds 429, failing
retunes trip a per-model breaker to 503 and recover through a
half-open probe, and ``stop()`` drains instead of hanging.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import pathlib
import threading
import time
import warnings

import numpy as np
import pytest

from repro.api import Engine, Problem
from repro.core.executor import submit_job
from repro.core.fairness_metrics import METRIC_FACTORIES
from repro.core.fitter import WeightedFitter
from repro.core.spec import Constraint
from repro.datasets import load_scenario
from repro.ml import GaussianNaiveBayes
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    active_plan,
)
from repro.serving import (
    FairnessService,
    JobFailedError,
    MicroBatcher,
    ModelRegistry,
    ServingClient,
    ServingError,
    serve_in_thread,
)
from repro.store import CacheStore
from repro.store.blob import content_key

SMOKE_PLAN = pathlib.Path(__file__).parent / "fault_plans" / "smoke.json"


# -- store degradation ---------------------------------------------------------


class TestStoreDegradation:
    def _store(self, tmp_path, **kwargs):
        return CacheStore(tmp_path / "cache", **kwargs)

    def test_injected_get_failure_reads_as_miss(self, tmp_path):
        store = self._store(tmp_path)
        key = content_key("payload")
        store.put("fit", key, {"x": 1})
        plan = FaultPlan(
            [FaultRule("store.get", "raise", error="OSError")], seed=0,
        )
        with active_plan(plan):
            with pytest.warns(RuntimeWarning, match="cache miss"):
                assert store.get("fit", key, default="fell-back") == (
                    "fell-back"
                )
        assert store.counters["io_errors"] == 1
        assert store.counters["misses"] == 1
        # chaos over: the blob itself was never harmed
        assert store.get("fit", key) == {"x": 1}

    def test_injected_put_failure_drops_the_put(self, tmp_path):
        store = self._store(tmp_path)
        key = content_key("dropped")
        plan = FaultPlan(
            [FaultRule("store.put", "raise", error="OSError")], seed=0,
        )
        with active_plan(plan):
            with pytest.warns(RuntimeWarning, match="drop"):
                assert store.put("fit", key, {"x": 2}) is None
        assert store.counters["io_errors"] == 1
        assert store.get("fit", key) is None  # nothing was published

    def test_truncate_fault_exercises_corrupt_blob_path(self, tmp_path):
        store = self._store(tmp_path)
        key = content_key("to-corrupt")
        store.put("fit", key, {"big": list(range(500))})
        plan = FaultPlan(
            [FaultRule("store.get", "truncate", max_fires=1)], seed=0,
        )
        with active_plan(plan):
            with pytest.warns(RuntimeWarning, match="corrupt"):
                assert store.get("fit", key, default="miss") == "miss"
        assert store.counters["corrupt"] == 1
        # the chopped blob was removed: the next read is a clean miss
        assert store.get("fit", key) is None
        assert store.counters["corrupt"] == 1

    def test_breaker_opens_and_skips_io(self, tmp_path):
        store = self._store(
            tmp_path,
            breaker=CircuitBreaker(threshold=2, cooldown_s=600.0),
        )
        key = content_key("gated")
        plan = FaultPlan(
            [FaultRule("store.get", "raise", error="OSError")], seed=0,
        )
        with active_plan(plan):
            for _ in range(2):
                with pytest.warns(RuntimeWarning):
                    store.get("fit", key)
            # breaker now open: misses come back without touching disk
            # (no warning — the site is never reached)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert store.get("fit", key, default="shed") == "shed"
        assert store.counters["io_errors"] == 2
        assert store.counters["breaker_skips"] >= 1
        assert store.stats()["breaker"]["state"] == "open"

    def test_breaker_false_disables_the_gate(self, tmp_path):
        store = self._store(tmp_path, breaker=False)
        assert store.breaker is None
        assert store.stats()["breaker"] is None


# -- fitter pool degradation ---------------------------------------------------


class _NoBatchNB(GaussianNaiveBayes):
    """NB with the batch protocol off, forcing pool/serial dispatch."""

    supports_batch_fit = False


class _SuicidalNB(_NoBatchNB):
    """Dies (hard) whenever fitted inside a pool worker process."""

    def fit(self, X, y, sample_weight=None):
        if multiprocessing.parent_process() is not None:
            os._exit(1)
        return super().fit(X, y, sample_weight=sample_weight)


def _toy_training_setup(seed=0, n=240):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] + 0.5 * rng.normal(size=n) > 0).astype(np.int64)
    groups = rng.integers(0, 2, size=n)
    constraints = [
        Constraint(
            metric=METRIC_FACTORIES["SP"](), epsilon=0.05,
            group_names=("a", "b"),
            g1_idx=np.nonzero(groups == 0)[0],
            g2_idx=np.nonzero(groups == 1)[0],
        ),
    ]
    return X, y, constraints


LAMBDAS = np.array([[0.0], [0.6], [-0.8], [1.2]])


class TestFitterPoolDegradation:
    def _assert_matches_serial(self, estimator, got, X, y, constraints):
        serial = WeightedFitter(estimator, X, y, constraints)
        for m_serial, m_got in zip(serial.fit_batch(LAMBDAS), got):
            assert np.array_equal(m_serial.predict(X), m_got.predict(X))

    def test_injected_worker_start_failure_degrades_once(self):
        X, y, constraints = _toy_training_setup()
        fitter = WeightedFitter(_NoBatchNB(), X, y, constraints, n_jobs=2)
        plan = FaultPlan(
            [FaultRule("executor.worker_start", "raise", error="OSError")],
            seed=0,
        )
        with active_plan(plan):
            with pytest.warns(RuntimeWarning, match="in-process fits"):
                got = fitter.fit_batch(LAMBDAS)
            assert len(got) == len(LAMBDAS)
            assert fitter._pool_degraded
            # the degradation is sticky and silent from here on: no
            # second pool attempt, no second warning
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                fitter.fit_batch(LAMBDAS + 0.1)
        self._assert_matches_serial(_NoBatchNB(), got, X, y, constraints)
        assert fitter.fit_paths.get("pool") is None
        assert fitter.fit_paths["serial"] >= len(LAMBDAS)

    def test_real_worker_death_degrades_to_identical_fits(self):
        X, y, constraints = _toy_training_setup(seed=3)
        fitter = WeightedFitter(_SuicidalNB(), X, y, constraints, n_jobs=2)
        with pytest.warns(RuntimeWarning, match="workers died"):
            got = fitter.fit_batch(LAMBDAS)
        assert fitter._pool_degraded
        # in-process fits never cross a process boundary, so the same
        # estimator fits fine — and bit-identically to the reference
        self._assert_matches_serial(_SuicidalNB(), got, X, y, constraints)


# -- micro-batcher resilience --------------------------------------------------


def _labels(chunks):
    return [np.zeros(len(chunk), dtype=np.int64) for chunk in chunks]


class TestBatcherResilience:
    def test_expired_entries_dropped_before_the_batch_runs(self):
        fitted = []

        def spying_predict(chunks):
            fitted.extend(len(c) for c in chunks)
            return _labels(chunks)

        async def main():
            batcher = MicroBatcher(
                spying_predict, max_batch_size=8, max_wait_us=0,
            )
            await batcher.start()
            try:
                live = batcher.submit(np.zeros((2, 3)))
                dead = batcher.submit(
                    np.zeros((5, 3)), deadline=Deadline.after(0.0),
                )
                results = await asyncio.gather(
                    live, dead, return_exceptions=True,
                )
                return results, batcher.stats()
            finally:
                await batcher.close()

        results, stats = asyncio.run(main())
        assert isinstance(results[1], DeadlineExceeded)
        assert np.array_equal(results[0], np.zeros(2, dtype=np.int64))
        assert stats["expired"] == 1
        assert 5 not in fitted  # the expired rows never cost model time

    def test_good_request_succeeds_after_poisoned_batch(self):
        # ISSUE 8 satellite: the worker loop must survive a poisoned
        # request on the same model and keep answering the next one
        def moody_predict(chunks):
            if any(np.isnan(chunk).any() for chunk in chunks):
                raise RuntimeError("poisoned rows")
            return _labels(chunks)

        async def main():
            batcher = MicroBatcher(
                moody_predict, max_batch_size=8, max_wait_us=0,
                name="moody",
            )
            await batcher.start()
            try:
                with pytest.raises(RuntimeError, match="poisoned"):
                    await batcher.submit(np.full((2, 3), np.nan))
                good = await batcher.submit(np.zeros((3, 3)))
                return good, batcher.stats()
            finally:
                await batcher.close()

        good, stats = asyncio.run(main())
        assert np.array_equal(good, np.zeros(3, dtype=np.int64))
        assert stats["batch_errors"] == 1
        assert stats["requests"] == 1  # only the good one counts

    def test_injected_batch_fault_fails_only_its_batch(self):
        plan = FaultPlan(
            [FaultRule("batcher.predict", "raise", max_fires=1)], seed=0,
        )

        async def main():
            batcher = MicroBatcher(
                _labels, max_batch_size=4, max_wait_us=0,
            )
            await batcher.start()
            try:
                with pytest.raises(RuntimeError, match="fault-injection"):
                    await batcher.submit(np.zeros((1, 3)))
                return await batcher.submit(np.zeros((2, 3)))
            finally:
                await batcher.close()

        with active_plan(plan):
            good = asyncio.run(main())
        assert np.array_equal(good, np.zeros(2, dtype=np.int64))

    def test_drain_close_answers_queued_requests(self):
        async def main():
            batcher = MicroBatcher(
                _labels, max_batch_size=4, max_wait_us=0,
            )
            await batcher.start()
            futures = [
                asyncio.ensure_future(batcher.submit(np.zeros((1, 3))))
                for _ in range(6)
            ]
            await asyncio.sleep(0)  # enqueue before the drain begins
            report = await batcher.close(drain=True, drain_timeout_s=5.0)
            results = await asyncio.gather(
                *futures, return_exceptions=True,
            )
            return report, results

        report, results = asyncio.run(main())
        assert report["drained"] is True
        assert report["failed_queued"] == 0
        assert all(isinstance(r, np.ndarray) for r in results)


# -- service-level degradation -------------------------------------------------

SCENARIO_N = 900
SCENARIO_SEED = 5


@pytest.fixture(scope="module")
def dataset():
    return load_scenario("group_sweep", n=SCENARIO_N, seed=SCENARIO_SEED)


@pytest.fixture(scope="module")
def fair_model(dataset):
    return Engine("auto").solve(
        Problem("SP <= 0.08"), GaussianNaiveBayes(), dataset,
        seed=SCENARIO_SEED,
    )


def _make_service(dataset, fair_model, **kwargs):
    registry = ModelRegistry()
    registry.register(
        "gs", fair_model, dataset_fingerprint=dataset.fingerprint(),
    )
    kwargs.setdefault("batching", True)
    kwargs.setdefault("max_batch_size", 16)
    kwargs.setdefault("max_wait_us", 500)
    return FairnessService(registry=registry, **kwargs)


@pytest.fixture()
def server(dataset, fair_model):
    with serve_in_thread(_make_service(dataset, fair_model)) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServingClient(server.host, server.port) as c:
        yield c


class TestServiceDegradation:
    def test_predict_deadline_answers_504(self, server, client, dataset):
        plan = FaultPlan(
            [FaultRule("batcher.predict", "delay", ms=150.0)], seed=0,
        )
        with active_plan(plan):
            with pytest.raises(ServingError) as excinfo:
                client.predict("gs", dataset.X[:2], timeout_ms=30)
        assert excinfo.value.status == 504
        assert excinfo.value.payload["deadline_exceeded"] is True
        stats = client.stats()
        assert stats["admission"]["deadline_expired"] >= 1

    def test_generous_deadline_still_answers(self, client, dataset,
                                             fair_model):
        got = client.predict("gs", dataset.X[:5], timeout_ms=30_000)
        assert np.array_equal(got, fair_model.predict(dataset.X[:5]))

    def test_bad_timeout_ms_is_400(self, client, dataset):
        with pytest.raises(ServingError) as excinfo:
            client.predict("gs", dataset.X[:2], timeout_ms=-5)
        assert excinfo.value.status == 400

    def test_predict_overload_sheds_429(self, server, client, dataset):
        service = server.service
        service._inflight = service.max_inflight  # saturate admission
        try:
            with pytest.raises(ServingError) as excinfo:
                client.predict("gs", dataset.X[:2])
        finally:
            service._inflight = 0
        assert excinfo.value.status == 429
        assert excinfo.value.payload["shed"] is True
        assert excinfo.value.payload["retry_after_s"] > 0
        stats = client.stats()
        assert stats["admission"]["shed_predict"] >= 1
        assert stats["resilience"]["max_inflight"] == 256

    def test_retune_sheds_when_job_table_is_full(self, dataset,
                                                 fair_model):
        service = _make_service(dataset, fair_model, max_jobs=0)
        with serve_in_thread(service) as handle:
            with ServingClient(handle.host, handle.port) as client:
                with pytest.raises(ServingError) as excinfo:
                    client.retune(
                        "SP <= 0.2", "scenario:group_sweep", n=200,
                        name="shed-me",
                    )
        assert excinfo.value.status == 429
        assert service._counters["shed_retune"] == 1

    def test_retune_breaker_cycle(self, dataset, fair_model):
        service = _make_service(
            dataset, fair_model,
            breaker_threshold=1, breaker_cooldown_s=0.3,
        )
        with serve_in_thread(service) as handle:
            with ServingClient(handle.host, handle.port) as client:
                # 1. a failing solve (unknown dataset) trips the breaker
                job = client.retune(
                    "SP <= 0.2", "no-such-dataset", name="braky",
                )
                with pytest.raises(JobFailedError) as excinfo:
                    client.wait_job(job["job_id"])
                assert excinfo.value.job_status == "error"
                # 2. while open: immediate 503 with the breaker state
                with pytest.raises(ServingError) as shed:
                    client.retune(
                        "SP <= 0.2", "scenario:group_sweep", n=200,
                        name="braky",
                    )
                assert shed.value.status == 503
                assert shed.value.payload["state"] == "open"
                assert shed.value.payload["retry_after_s"] >= 0
                # 3. after the cooldown: one half-open probe runs a
                # real solve and closes the breaker again
                time.sleep(0.4)
                probe = client.retune(
                    "SP <= 0.2", "scenario:group_sweep", n=200,
                    seed=SCENARIO_SEED, name="braky",
                )
                done = client.wait_job(probe["job_id"])
                assert done["status"] == "done"
                stats = client.stats()
        breaker = stats["resilience"]["breakers"]["braky"]
        assert breaker["state"] == "closed"
        assert breaker["opens"] == 1
        assert breaker["cycles"] == 1
        assert stats["admission"]["breaker_rejected"] == 1
        assert stats["admission"]["retune_failures"] == 1

    def test_wait_job_surfaces_terminal_error(self, client):
        job = client.retune("SP <= 0.2", "no-such-dataset", name="doomed")
        with pytest.raises(JobFailedError) as excinfo:
            client.wait_job(job["job_id"])
        message = str(excinfo.value)
        assert "finished error" in message
        assert "no-such-dataset" in message
        assert excinfo.value.payload["status"] == "error"

    def test_retune_timeout_publishes_timeout_status(self, client):
        job = client.retune(
            "SP <= 0.05", "scenario:group_sweep", n=800,
            name="too-slow", timeout_ms=1,
        )
        with pytest.raises(JobFailedError) as excinfo:
            client.wait_job(job["job_id"])
        assert excinfo.value.job_status == "timeout"
        assert "budget" in str(excinfo.value)

    def test_job_status_includes_traceback_on_error(self, client):
        job = client.retune("SP <= 0.2", "no-such-dataset", name="tb")
        with pytest.raises(JobFailedError):
            client.wait_job(job["job_id"])
        status = client.job(job["job_id"])
        assert "_run_retune" in status["traceback"]

    def test_stats_exposes_fault_plan_when_active(self, server, client,
                                                  dataset):
        plan = FaultPlan(
            [FaultRule("service.dispatch", "delay", ms=0.0)], seed=4,
        )
        with active_plan(plan):
            client.predict("gs", dataset.X[:2])
            stats = client.stats()
        assert stats["resilience"]["faults"]["seed"] == 4
        assert stats["resilience"]["faults"]["calls"][
            "service.dispatch"
        ] >= 1
        assert client.stats()["resilience"]["faults"] is None


class TestGracefulStop:
    def test_stop_reports_drain_and_cancels_jobs(self, dataset,
                                                 fair_model):
        service = _make_service(dataset, fair_model)
        handle = serve_in_thread(service)
        with ServingClient(handle.host, handle.port) as client:
            client.predict("gs", dataset.X[:3])
        release = threading.Event()
        stuck = submit_job(lambda: release.wait(10), name="stuck")
        service._jobs["stuck"] = (stuck, {"model": "m", "spec": "s"})
        try:
            report = handle.stop()
        finally:
            release.set()
        assert report["forced"] is False
        assert report["drained"] is True
        assert report["cancelled_jobs"] == 1
        assert stuck.status == "cancelled"
        assert report["unjoined_threads"] == []
        assert not handle.thread.is_alive()

    def test_stop_escalates_instead_of_hanging(self, dataset,
                                               fair_model):
        service = _make_service(dataset, fair_model)
        handle = serve_in_thread(service)

        async def wedged_stop(drain_timeout_s=5.0):
            await asyncio.sleep(60)

        service.stop = wedged_stop
        t0 = time.monotonic()
        report = handle.stop(timeout=0.5)
        assert time.monotonic() - t0 < 5.0
        assert report["forced"] is True
        handle.thread.join(5.0)
        assert not handle.thread.is_alive()


# -- client transport retries --------------------------------------------------


class _FakeResponse:
    status = 200

    def read(self):
        return json.dumps({"ok": True}).encode()


class _ScriptedConn:
    """One connection attempt; ``fail`` is None, "send", or "recv"."""

    def __init__(self, fail=None):
        self.fail = fail
        self.requests = []

    def request(self, method, path, body=None, headers=None):
        self.requests.append((method, path))
        if self.fail == "send":
            raise ConnectionError("send failed")

    def getresponse(self):
        if self.fail == "recv":
            raise ConnectionError("connection dropped mid-response")
        return _FakeResponse()

    def close(self):
        pass


def _scripted_client(fails, max_attempts=3):
    client = ServingClient(
        "127.0.0.1", 1,
        retry=RetryPolicy(
            max_attempts=max_attempts, base_s=0.0, cap_s=0.0,
            jitter=False,
        ),
    )
    conns = [_ScriptedConn(fail) for fail in fails]
    queue = iter(conns)
    client._connection = lambda: next(queue)
    return client, conns


class TestClientRetrySafety:
    def test_send_failure_retries_even_non_idempotent(self):
        # the request never reached the server: retrying /retune is safe
        client, conns = _scripted_client(["send", None])
        assert client._request("POST", "/retune", {"x": 1}) == {"ok": True}
        assert [len(c.requests) for c in conns] == [1, 1]

    def test_response_failure_does_not_retry_retune(self):
        # the job may already be running server-side: surfacing the
        # failure beats silently submitting it twice
        client, conns = _scripted_client(["recv", None])
        with pytest.raises(ConnectionError):
            client._request("POST", "/retune", {"x": 1})
        assert [len(c.requests) for c in conns] == [1, 0]

    def test_response_failure_retries_predict(self):
        client, _ = _scripted_client(["recv", None])
        assert client._request("POST", "/predict", {"x": 1}) == {
            "ok": True,
        }

    def test_get_retries_up_to_max_attempts(self):
        client, conns = _scripted_client(["recv", "recv", None])
        assert client._request("GET", "/healthz") == {"ok": True}
        assert [len(c.requests) for c in conns] == [1, 1, 1]
        client, _ = _scripted_client(["recv", "recv", "recv"])
        with pytest.raises(ConnectionError):
            client._request("GET", "/healthz")

    def test_retry_false_disables_retries(self):
        client = ServingClient("127.0.0.1", 1, retry=False)
        assert client.retry is None
        conn = _ScriptedConn("send")
        client._connection = lambda: conn
        with pytest.raises(ConnectionError):
            client._request("GET", "/healthz")
        assert len(conn.requests) == 1


# -- the committed chaos plan stays survivable ---------------------------------


class TestSmokePlan:
    def test_smoke_plan_loads_and_names_only_known_sites(self):
        plan = FaultPlan.from_file(SMOKE_PLAN)
        assert plan.rules, "smoke plan must carry rules"

    def test_predictions_stay_bit_identical_under_smoke_plan(
        self, dataset, fair_model,
    ):
        # the CI chaos-smoke job runs the ordinary serving tests under
        # this exact plan; a correctness-affecting rule belongs in a
        # dedicated test, never in smoke.json
        plan = FaultPlan.from_file(SMOKE_PLAN)
        with active_plan(plan):
            service = _make_service(dataset, fair_model)
            with serve_in_thread(service) as handle:
                with ServingClient(handle.host, handle.port) as client:
                    for start in range(0, 60, 7):
                        rows = dataset.X[start:start + 7]
                        got = client.predict("gs", rows)
                        assert np.array_equal(
                            got, fair_model.predict(rows),
                        )
            assert plan.stats()["calls"]  # chaos actually ran
