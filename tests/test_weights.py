"""Tests for example-weight derivation (Table 3) and negative-weight handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness_metrics import (
    false_negative_rate_parity,
    misclassification_rate_parity,
    statistical_parity,
)
from repro.core.spec import Constraint
from repro.core.weights import compute_weights, resolve_negative_weights


def _constraint(metric, g1_idx, g2_idx, eps=0.03):
    return Constraint(
        metric=metric,
        epsilon=eps,
        group_names=("g1", "g2"),
        g1_idx=np.asarray(g1_idx),
        g2_idx=np.asarray(g2_idx),
    )


class TestSPWeightsMatchTable3:
    """SP weights must be ``1 ∓ λN/|g|`` split by label and group."""

    def test_weights_formula(self):
        # 6 rows: g1 = {0,1,2}, g2 = {3,4,5}; labels mixed
        y = np.array([0, 1, 1, 0, 0, 1])
        c = _constraint(statistical_parity(), [0, 1, 2], [3, 4, 5])
        lam = 0.1
        w = compute_weights(6, [c], [lam], y)
        n, g = 6, 3
        # g1: y=0 -> 1 - λN/|g1| ; y=1 -> 1 + λN/|g1|  (Table 3 SP row)
        assert w[0] == pytest.approx(1 - lam * n / g)
        assert w[1] == pytest.approx(1 + lam * n / g)
        # g2: signs flipped
        assert w[3] == pytest.approx(1 + lam * n / g)
        assert w[5] == pytest.approx(1 - lam * n / g)

    def test_lambda_zero_gives_unit_weights(self):
        y = np.array([0, 1, 0, 1])
        c = _constraint(statistical_parity(), [0, 1], [2, 3])
        w = compute_weights(4, [c], [0.0], y)
        assert np.array_equal(w, np.ones(4))

    def test_rows_outside_groups_keep_weight_one(self):
        y = np.array([0, 1, 0, 1, 0])
        c = _constraint(statistical_parity(), [0, 1], [2, 3])
        w = compute_weights(5, [c], [0.5], y)
        assert w[4] == 1.0

    def test_overlapping_groups_sum_contributions(self):
        # row 1 belongs to both groups: contributions add (§5.2)
        y = np.array([1, 1, 1])
        c = _constraint(statistical_parity(), [0, 1], [1, 2])
        lam = 0.2
        w = compute_weights(3, [c], [lam], y)
        n = 3
        expected_mid = 1 + lam * n * (1 / 2) - lam * n * (1 / 2)
        assert w[1] == pytest.approx(expected_mid)


class TestFNRWeights:
    def test_only_positive_labels_touched(self):
        y = np.array([0, 1, 0, 1])
        c = _constraint(false_negative_rate_parity(), [0, 1], [2, 3])
        w = compute_weights(4, [c], [0.3], y)
        assert w[0] == 1.0 and w[2] == 1.0
        assert w[1] != 1.0 and w[3] != 1.0


class TestMultiConstraintWeights:
    def test_contributions_add_across_constraints(self):
        y = np.array([0, 1, 0, 1])
        c1 = _constraint(statistical_parity(), [0, 1], [2, 3])
        c2 = _constraint(misclassification_rate_parity(), [0, 1], [2, 3])
        w_both = compute_weights(4, [c1, c2], [0.1, 0.2], y)
        w1 = compute_weights(4, [c1], [0.1], y)
        w2 = compute_weights(4, [c2], [0.2], y)
        assert np.allclose(w_both - 1.0, (w1 - 1.0) + (w2 - 1.0))

    def test_lambda_shape_checked(self):
        y = np.array([0, 1])
        c = _constraint(statistical_parity(), [0], [1])
        with pytest.raises(ValueError, match="shape"):
            compute_weights(2, [c], [0.1, 0.2], y)

    def test_y_length_checked(self):
        c = _constraint(statistical_parity(), [0], [1])
        with pytest.raises(ValueError, match="length"):
            compute_weights(3, [c], [0.1], np.array([0, 1]))

    def test_parameterized_metric_needs_predictions(self):
        from repro.core.fairness_metrics import false_discovery_rate_parity

        y = np.array([0, 1, 0, 1])
        c = _constraint(false_discovery_rate_parity(), [0, 1], [2, 3])
        with pytest.raises(ValueError, match="predictions"):
            compute_weights(4, [c], [0.1], y)


class TestResolveNegativeWeights:
    def test_flip_preserves_objective(self):
        """w·1(h=y) and |w|·1(h=flip(y)) differ by a constant in h.

        The weighted count of correct predictions under the transformed
        data must equal the original objective plus a model-independent
        constant — checked for every possible prediction vector on a tiny
        example.
        """
        y = np.array([0, 1, 1, 0])
        w = np.array([1.0, -2.0, 0.5, -0.25])
        w2, y2 = resolve_negative_weights(w, y, strategy="flip")
        constant = None
        import itertools
        for pred in itertools.product([0, 1], repeat=4):
            pred = np.array(pred)
            original = np.sum(w * (pred == y))
            transformed = np.sum(w2 * (pred == y2))
            diff = transformed - original
            if constant is None:
                constant = diff
            assert diff == pytest.approx(constant)

    def test_flip_flips_labels(self):
        y = np.array([0, 1])
        w = np.array([-1.0, 1.0])
        w2, y2 = resolve_negative_weights(w, y)
        assert w2[0] == 1.0 and y2[0] == 1
        assert w2[1] == 1.0 and y2[1] == 1

    def test_clip_zeroes_negatives(self):
        w2, y2 = resolve_negative_weights(
            np.array([-1.0, 2.0]), np.array([0, 1]), strategy="clip"
        )
        assert w2.tolist() == [0.0, 2.0]
        assert y2.tolist() == [0, 1]

    def test_nonnegative_passthrough(self):
        w = np.array([0.5, 1.5])
        y = np.array([0, 1])
        w2, y2 = resolve_negative_weights(w, y)
        assert np.array_equal(w, w2) and np.array_equal(y, y2)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            resolve_negative_weights(
                np.array([-1.0]), np.array([0]), strategy="bogus"
            )


@given(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=-2.0, max_value=2.0),
)
@settings(max_examples=50, deadline=None)
def test_weight_objective_identity_property(seed, lam):
    """Property (Eq. 12): Σ w_i·1_i / N == AP + λ·FP + constant.

    For random data, groups and predictions, the weighted objective equals
    accuracy plus λ times the disparity, up to the λ·(c0 terms) constant
    that does not depend on the model.
    """
    rng = np.random.default_rng(seed)
    n = 30
    y = rng.integers(0, 2, size=n)
    perm = rng.permutation(n)
    g1_idx, g2_idx = perm[: n // 2], perm[n // 2 :]
    metric = statistical_parity()
    c = _constraint(metric, g1_idx, g2_idx)
    w = compute_weights(n, [c], [lam], y)

    pred = rng.integers(0, 2, size=n)
    correct = (pred == y).astype(float)
    lhs = float(np.dot(w, correct)) / n

    ap = correct.mean()
    fp = metric.value(y[g1_idx], pred[g1_idx]) - metric.value(
        y[g2_idx], pred[g2_idx]
    )
    _, c0_1 = metric.coefficients(y[g1_idx])
    _, c0_2 = metric.coefficients(y[g2_idx])
    constant = lam * (c0_1 - c0_2)
    assert lhs == pytest.approx(ap + lam * fp - constant, abs=1e-9)
