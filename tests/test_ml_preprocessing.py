"""Tests for scaler / one-hot encoder / tabular encoder."""

import numpy as np
import pytest

from repro.ml.preprocessing import OneHotEncoder, StandardScaler, TabularEncoder


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(500, 3))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_not_divided_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        X = np.random.default_rng(1).normal(size=(50, 2)) * 4 + 2
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_uses_fit_statistics(self):
        train = np.array([[0.0], [2.0]])
        scaler = StandardScaler().fit(train)
        assert scaler.transform(np.array([[1.0]]))[0, 0] == pytest.approx(0.0)


class TestOneHotEncoder:
    def test_basic_encoding(self):
        X = np.array([[0], [1], [2], [1]])
        Z = OneHotEncoder().fit_transform(X)
        assert Z.shape == (4, 3)
        assert np.array_equal(Z.sum(axis=1), np.ones(4))
        assert Z[2, 2] == 1.0

    def test_unknown_category_maps_to_zeros(self):
        enc = OneHotEncoder().fit(np.array([[0], [1]]))
        Z = enc.transform(np.array([[7]]))
        assert np.array_equal(Z, np.zeros((1, 2)))

    def test_multiple_columns(self):
        X = np.array([[0, 10], [1, 20]])
        enc = OneHotEncoder().fit(X)
        assert enc.n_output_features_ == 4
        assert enc.transform(X).shape == (2, 4)

    def test_column_count_mismatch_raises(self):
        enc = OneHotEncoder().fit(np.array([[0], [1]]))
        with pytest.raises(ValueError, match="expected 1 columns"):
            enc.transform(np.array([[0, 1]]))

    def test_1d_input_reshaped(self):
        Z = OneHotEncoder().fit_transform(np.array([0, 1, 0]))
        assert Z.shape == (3, 2)


class TestTabularEncoder:
    def test_combined_output_width(self):
        rng = np.random.default_rng(0)
        X = np.column_stack(
            [rng.normal(size=20), rng.integers(0, 3, size=20)]
        )
        enc = TabularEncoder(numeric_columns=[0], categorical_columns=[1])
        Z = enc.fit_transform(X)
        assert Z.shape == (20, 1 + 3)

    def test_numeric_only(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        enc = TabularEncoder(numeric_columns=[0, 1], categorical_columns=[])
        assert enc.fit_transform(X).shape == (10, 2)

    def test_no_columns_raises(self):
        enc = TabularEncoder(numeric_columns=[], categorical_columns=[])
        with pytest.raises(ValueError, match="no columns"):
            enc.fit_transform(np.zeros((3, 2)))
