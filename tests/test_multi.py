"""Tests for Algorithm 2 (hill climbing over Λ) and grid-search baseline."""

import numpy as np
import pytest

from repro.core.exceptions import InfeasibleConstraintError
from repro.core.fitter import WeightedFitter
from repro.core.multi import grid_search_lambdas, hill_climb
from repro.core.spec import FairnessSpec, bind_specs
from repro.ml import LogisticRegression


def _setup(train, val, specs):
    tc = bind_specs(specs, train)
    vc = bind_specs(specs, val)
    fitter = WeightedFitter(
        LogisticRegression(max_iter=200), train.X, train.y, tc
    )
    return fitter, vc


class TestHillClimb:
    def test_three_group_sp_feasible(self, three_group_splits):
        train, val, _ = three_group_splits
        fitter, vc = _setup(train, val, [FairnessSpec("SP", 0.05)])
        assert len(vc) == 3
        result = hill_climb(fitter, vc, val.X, val.y)
        assert result.feasible
        pred = result.model.predict(val.X)
        for c in vc:
            assert abs(c.disparity(val.y, pred)) <= c.epsilon + 1e-9

    def test_two_metrics_simultaneously(self, two_group_splits):
        # SP and FNR are coupled on this dataset: tight ε for both is
        # genuinely infeasible (the Table 7 N/A phenomenon), so the test
        # uses an allowance a dense Λ scan confirms is reachable
        train, val, _ = two_group_splits
        specs = [FairnessSpec("SP", 0.12), FairnessSpec("FNR", 0.12)]
        fitter, vc = _setup(train, val, specs)
        result = hill_climb(fitter, vc, val.X, val.y)
        pred = result.model.predict(val.X)
        for c in vc:
            assert abs(c.disparity(val.y, pred)) <= c.epsilon + 1e-9

    def test_lambdas_vector_length(self, three_group_splits):
        train, val, _ = three_group_splits
        fitter, vc = _setup(train, val, [FairnessSpec("SP", 0.05)])
        result = hill_climb(fitter, vc, val.X, val.y)
        assert result.lambdas.shape == (3,)

    def test_already_feasible_returns_immediately(self, three_group_splits):
        train, val, _ = three_group_splits
        fitter, vc = _setup(train, val, [FairnessSpec("SP", 0.9)])
        result = hill_climb(fitter, vc, val.X, val.y)
        assert result.n_rounds == 0
        assert np.array_equal(result.lambdas, np.zeros(3))

    def test_budget_exhaustion_raises(self, three_group_splits):
        train, val, _ = three_group_splits
        # ε=0 on noisy data is effectively unreachable
        fitter, vc = _setup(train, val, [FairnessSpec("SP", 0.0)])
        with pytest.raises(InfeasibleConstraintError) as excinfo:
            hill_climb(fitter, vc, val.X, val.y, max_rounds=2)
        assert excinfo.value.best_model is not None

    def test_mismatched_constraint_lists_raise(self, three_group_splits):
        train, val, _ = three_group_splits
        fitter, vc = _setup(train, val, [FairnessSpec("SP", 0.05)])
        with pytest.raises(ValueError, match="differ in length"):
            hill_climb(fitter, vc[:2], val.X, val.y)

    def test_history_tracks_rounds(self, three_group_splits):
        train, val, _ = three_group_splits
        fitter, vc = _setup(train, val, [FairnessSpec("SP", 0.05)])
        result = hill_climb(fitter, vc, val.X, val.y)
        assert len(result.history) == result.n_rounds + 1


class TestGridSearch:
    def test_grid_finds_feasible_when_loose(self, three_group_splits):
        train, val, _ = three_group_splits
        fitter, vc = _setup(train, val, [FairnessSpec("SP", 0.1)])
        result = grid_search_lambdas(
            fitter, vc, val.X, val.y, grid_max=0.2, grid_steps=5
        )
        pred = result.model.predict(val.X)
        for c in vc:
            assert abs(c.disparity(val.y, pred)) <= c.epsilon + 1e-9

    def test_grid_fit_count_is_exponential(self, two_group_splits):
        train, val, _ = two_group_splits
        specs = [FairnessSpec("SP", 0.2), FairnessSpec("FNR", 0.2)]
        fitter, vc = _setup(train, val, specs)
        result = grid_search_lambdas(
            fitter, vc, val.X, val.y, grid_max=0.5, grid_steps=3
        )
        assert result.n_fits >= 3**2

    def test_infeasible_grid_raises(self, three_group_splits):
        train, val, _ = three_group_splits
        fitter, vc = _setup(train, val, [FairnessSpec("SP", 0.0)])
        with pytest.raises(InfeasibleConstraintError):
            grid_search_lambdas(
                fitter, vc, val.X, val.y, grid_max=0.1, grid_steps=2
            )

    def test_hill_climb_cheaper_than_grid(self, three_group_splits):
        """The Table 8 claim: HC needs far fewer fits than a grid."""
        train, val, _ = three_group_splits
        fitter_hc, vc = _setup(train, val, [FairnessSpec("SP", 0.1)])
        hc = hill_climb(fitter_hc, vc, val.X, val.y)
        fitter_grid, _ = _setup(train, val, [FairnessSpec("SP", 0.1)])
        grid = grid_search_lambdas(
            fitter_grid, vc, val.X, val.y, grid_max=0.2, grid_steps=5
        )
        assert hc.n_fits < grid.n_fits
