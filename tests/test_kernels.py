"""Compiled constraint kernels: equivalence with the naive reference path.

The contract under test (ISSUE 2 acceptance):

* :class:`CompiledConstraints` weights match the legacy
  :func:`compute_weights` **bit for bit** across random specs, λ vectors
  (including negative-weight regimes), and overlapping groups;
* the batched APIs (``weights_batch`` / ``fit_batch`` /
  ``evaluate_lambda_batch``) agree with their sequential counterparts;
* the incremental FOR/FDR prediction update equals a fresh recount;
* ``engine="compiled"`` and ``engine="naive"`` select identical λ on
  fixed seeds, strategy by strategy.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine, Problem
from repro.core.fairness_metrics import (
    METRIC_FACTORIES,
    average_error_cost_parity,
    custom_metric,
)
from repro.core.fitter import WeightedFitter
from repro.core.kernels import (
    CompiledConstraints,
    CompiledEvaluator,
    evaluate_lambda_batch,
    rate_from_counts,
)
from repro.core.spec import Constraint
from repro.core.weights import (
    compute_weights,
    compute_weights_batch,
    resolve_negative_weights,
)
from repro.datasets.synthetic import make_biased_dataset
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import accuracy_score
from repro.ml.model_selection import train_val_test_split
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.tree import DecisionTree

ALL_METRICS = sorted(METRIC_FACTORIES)


# -- custom parameterized metric exercising the generic fallback -------------


def _flip_share_coeff(y, pred):
    # an arbitrary prediction-dependent linear metric: coefficients scale
    # with the number of predicted positives in the group
    scale = 1.0 + float(np.sum(pred == 1))
    return np.where(y == 1, 1.0 / scale, -0.5 / scale), 0.25


def _flip_share_rate(y, pred):
    scale = 1.0 + float(np.sum(pred == 1))
    correct = (y == pred).astype(np.float64)
    c = np.where(y == 1, 1.0 / scale, -0.5 / scale)
    return float(np.dot(c, correct) + 0.25)


def _custom_param_metric():
    return custom_metric(
        "CUSTOM", _flip_share_coeff, _flip_share_rate,
        parameterized_by_model=True,
    )


# -- hypothesis machinery -----------------------------------------------------


def _make_metric(name):
    if name == "AEC":
        return average_error_cost_parity(cost_fp=0.7, cost_fn=1.3)
    if name == "CUSTOM":
        return _custom_param_metric()
    return METRIC_FACTORIES[name]()


@st.composite
def weight_problems(draw):
    """Random (y, constraints, λ, predictions) tuples, overlaps included."""
    n = draw(st.integers(min_value=5, max_value=50))
    y = np.array(
        draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    k = draw(st.integers(min_value=1, max_value=4))
    constraints = []
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    names = ALL_METRICS + ["AEC", "CUSTOM"]
    for i in range(k):
        metric = _make_metric(draw(st.sampled_from(names)))
        # overlapping, non-empty groups drawn independently
        g1 = rng.choice(n, size=rng.integers(1, n + 1), replace=False)
        g2 = rng.choice(n, size=rng.integers(1, n + 1), replace=False)
        constraints.append(
            Constraint(
                metric=metric,
                epsilon=0.1,
                group_names=(f"a{i}", f"b{i}"),
                g1_idx=np.sort(g1),
                g2_idx=np.sort(g2),
            )
        )
    lambdas = np.array([
        draw(st.floats(
            min_value=-50.0, max_value=50.0,
            allow_nan=False, allow_infinity=False,
        ))
        for _ in range(k)
    ])
    # sprinkle exact zeros and a large-λ (negative-weight) regime
    if draw(st.booleans()):
        lambdas[draw(st.integers(0, k - 1))] = 0.0
    if draw(st.booleans()):
        lambdas[draw(st.integers(0, k - 1))] *= 1e3
    predictions = np.array(
        draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    return y, constraints, lambdas, predictions


class TestWeightEquivalenceProperty:
    @settings(max_examples=60, deadline=None)
    @given(weight_problems())
    def test_compiled_matches_naive_bit_for_bit(self, problem):
        y, constraints, lambdas, predictions = problem
        n = len(y)
        naive = compute_weights(
            n, constraints, lambdas, y, predictions=predictions
        )
        kernel = CompiledConstraints(constraints, y)
        compiled = kernel.weights(lambdas, predictions=predictions)
        assert np.array_equal(naive, compiled)

    @settings(max_examples=30, deadline=None)
    @given(weight_problems())
    def test_batch_rows_equal_single_calls(self, problem):
        y, constraints, lambdas, predictions = problem
        kernel = CompiledConstraints(constraints, y)
        L = np.stack([lambdas, np.zeros_like(lambdas), -0.5 * lambdas])
        W = kernel.weights_batch(L, predictions=predictions)
        for b in range(len(L)):
            assert np.array_equal(W[b], kernel.weights(L[b]))

    @settings(max_examples=30, deadline=None)
    @given(weight_problems())
    def test_negative_weight_resolution_agrees(self, problem):
        y, constraints, lambdas, predictions = problem
        n = len(y)
        naive = compute_weights(
            n, constraints, lambdas, y, predictions=predictions
        )
        kernel = CompiledConstraints(constraints, y)
        compiled = kernel.weights(lambdas, predictions=predictions)
        for strategy in ("flip", "clip"):
            w_n, y_n = resolve_negative_weights(naive, y, strategy=strategy)
            w_c, y_c = resolve_negative_weights(compiled, y, strategy=strategy)
            assert np.array_equal(w_n, w_c)
            assert np.array_equal(y_n, y_c)


class TestIncrementalPredictionUpdates:
    def _constraints(self, y, rng, metrics=("FOR", "FDR", "CUSTOM")):
        n = len(y)
        constraints = []
        for i, name in enumerate(metrics):
            g1 = np.sort(rng.choice(n, size=n // 2, replace=False))
            g2 = np.sort(rng.choice(n, size=n // 2, replace=False))
            constraints.append(
                Constraint(
                    metric=_make_metric(name), epsilon=0.05,
                    group_names=(f"a{i}", f"b{i}"), g1_idx=g1, g2_idx=g2,
                )
            )
        return constraints

    def test_incremental_equals_fresh_recount(self):
        rng = np.random.default_rng(7)
        y = rng.integers(0, 2, size=120)
        constraints = self._constraints(y, rng)
        lambdas = np.array([0.8, -1.6, 2.5])
        incremental = CompiledConstraints(constraints, y)
        pred = rng.integers(0, 2, size=120)
        for step in range(8):
            # flip a few rows at a time — the incremental path only
            # re-tallies those
            flips = rng.choice(120, size=rng.integers(0, 9), replace=False)
            pred = pred.copy()
            pred[flips] = 1 - pred[flips]
            incremental.update_predictions(pred)
            fresh = CompiledConstraints(constraints, y)
            fresh.update_predictions(pred)
            naive = compute_weights(
                120, constraints, lambdas, y, predictions=pred
            )
            assert np.array_equal(incremental.weights(lambdas), naive)
            assert np.array_equal(fresh.weights(lambdas), naive)

    def test_nonzero_lambda_requires_predictions(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, size=40)
        kernel = CompiledConstraints(self._constraints(y, rng, ("FOR",)), y)
        with pytest.raises(ValueError, match="update_predictions"):
            kernel.weights(np.array([1.0]))
        # λ = 0 never needs predictions
        assert np.array_equal(
            kernel.weights(np.array([0.0])), np.ones(40)
        )

    def test_identical_update_is_a_true_noop(self):
        """Re-sending unchanged predictions must not copy or refresh.

        The bug this pins down: the zero-changed-rows path used to
        re-copy the prediction vector and walk every parameterized
        term anyway, re-invoking custom coefficient callables for
        state that could not have moved.
        """
        rng = np.random.default_rng(11)
        y = rng.integers(0, 2, size=60)
        calls = {"n": 0}

        def counting_coeff(y_group, pred_group):
            calls["n"] += 1
            m = max(int(np.sum(pred_group == 0)), 1)
            return np.where(y_group == 0, -1.0 / m, 0.0), 1.0

        metric = custom_metric(
            "COUNTING", counting_coeff, lambda yg, pg: 0.0,
            parameterized_by_model=True,
        )
        kernel = CompiledConstraints(
            [Constraint(
                metric=metric, epsilon=0.05, group_names=("a", "b"),
                g1_idx=np.arange(0, 30), g2_idx=np.arange(30, 60),
            )],
            y,
        )
        pred = rng.integers(0, 2, size=60)
        kernel.update_predictions(pred)
        baseline_calls = calls["n"]
        held = kernel._predictions
        weights = kernel.weights(np.array([0.7]))
        kernel.update_predictions(pred.copy())  # same content, new array
        assert calls["n"] == baseline_calls  # no coefficient re-walk
        assert kernel._predictions is held   # and no defensive copy
        assert np.array_equal(kernel.weights(np.array([0.7])), weights)
        flipped = pred.copy()
        flipped[0] = 1 - flipped[0]
        kernel.update_predictions(flipped)   # a real change still refreshes
        assert calls["n"] > baseline_calls


class TestRateFromCounts:
    """The shared count→rate arithmetic both audit paths run through."""

    def test_matches_evaluator_disparities_bitwise(self):
        rng = np.random.default_rng(19)
        y = rng.integers(0, 2, size=200).astype(np.int64)
        pred = rng.integers(0, 2, size=200).astype(np.int64)
        g1 = np.sort(rng.choice(200, size=90, replace=False))
        g2 = np.sort(rng.choice(200, size=90, replace=False))
        for name in ["SP", "MR", "FPR", "FNR", "FOR", "FDR"]:
            metric = _make_metric(name)
            constraint = Constraint(
                metric=metric, epsilon=0.05, group_names=("a", "b"),
                g1_idx=g1, g2_idx=g2,
            )
            evaluator = CompiledEvaluator([constraint], y)
            sides = []
            for idx in (g1, g2):
                yg, pg = y[idx], pred[idx]
                pos0 = np.float64(np.sum((pg == 1) & (yg == 0)))
                pos1 = np.float64(np.sum((pg == 1) & (yg == 1)))
                counts = {
                    "SP": (pos0 + pos1,), "FPR": (pos0,), "FNR": (pos1,),
                }.get(name, (pos0, pos1))
                kind = {
                    "SP": "sp", "MR": "mr", "FPR": "fpr", "FNR": "fnr",
                    "FOR": "for", "FDR": "fdr",
                }[name]
                sides.append(rate_from_counts(
                    kind, counts, len(idx),
                    int(np.sum(yg == 0)), int(np.sum(yg == 1)), None,
                ))
            expected = np.asarray([sides[0] - sides[1]], dtype=np.float64)
            actual = evaluator.disparities(pred)
            assert actual.tobytes() == expected.tobytes(), name


class TestCompiledEvaluator:
    @settings(max_examples=40, deadline=None)
    @given(weight_problems())
    def test_matches_constraint_disparity_and_accuracy(self, problem):
        y, constraints, _lambdas, predictions = problem
        evaluator = CompiledEvaluator(constraints, y)
        got = evaluator.disparities(predictions)
        want = np.array(
            [c.disparity(y, predictions) for c in constraints]
        )
        assert np.array_equal(got, want)
        assert evaluator.accuracy(predictions) == accuracy_score(
            y, predictions
        )

    def test_batch_scoring_matches_per_row(self):
        rng = np.random.default_rng(11)
        y = rng.integers(0, 2, size=200)
        constraints = []
        for i, name in enumerate(ALL_METRICS + ["AEC"]):
            g1 = np.sort(rng.choice(200, size=90, replace=False))
            g2 = np.sort(rng.choice(200, size=90, replace=False))
            constraints.append(
                Constraint(
                    metric=_make_metric(name), epsilon=0.05,
                    group_names=(f"a{i}", f"b{i}"), g1_idx=g1, g2_idx=g2,
                )
            )
        evaluator = CompiledEvaluator(constraints, y)
        preds = rng.integers(0, 2, size=(7, 200))
        D = evaluator.disparities_batch(preds)
        A = evaluator.accuracies_batch(preds)
        for b in range(7):
            want = [c.disparity(y, preds[b]) for c in constraints]
            assert np.array_equal(D[b], np.array(want))
            assert A[b] == accuracy_score(y, preds[b])


# -- fitter-level batching ----------------------------------------------------


def _toy_training_setup(seed=0, n=300):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] + 0.5 * rng.normal(size=n) > 0).astype(np.int64)
    groups = rng.integers(0, 2, size=n)
    g1 = np.nonzero(groups == 0)[0]
    g2 = np.nonzero(groups == 1)[0]
    constraints = [
        Constraint(
            metric=_make_metric("SP"), epsilon=0.05,
            group_names=("a", "b"), g1_idx=g1, g2_idx=g2,
        ),
        Constraint(
            metric=_make_metric("MR"), epsilon=0.1,
            group_names=("a", "b"), g1_idx=g1, g2_idx=g2,
        ),
    ]
    return X, y, constraints


class TestFitBatch:
    def test_batch_models_match_sequential_fits(self):
        X, y, constraints = _toy_training_setup()
        L = np.array([[0.0, 0.0], [0.6, -0.4], [-2.0, 1.5]])
        serial = WeightedFitter(LogisticRegression(max_iter=40), X, y,
                                constraints)
        batch = WeightedFitter(LogisticRegression(max_iter=40), X, y,
                               constraints)
        wanted = [serial.fit(L[b]) for b in range(len(L))]
        got = batch.fit_batch(L)
        assert batch.n_fits == len(L)
        for m_w, m_g in zip(wanted, got):
            assert np.array_equal(m_w.predict(X), m_g.predict(X))

    def test_naive_engine_rejects_fit_batch(self):
        X, y, constraints = _toy_training_setup()
        fitter = WeightedFitter(
            GaussianNaiveBayes(), X, y, constraints, engine="naive"
        )
        with pytest.raises(ValueError, match="naive"):
            fitter.fit_batch(np.zeros((2, 2)))

    def test_parameterized_rejects_fit_batch(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(60, 3))
        y = rng.integers(0, 2, size=60)
        constraints = [
            Constraint(
                metric=_make_metric("FOR"), epsilon=0.05,
                group_names=("a", "b"),
                g1_idx=np.arange(30), g2_idx=np.arange(30, 60),
            )
        ]
        fitter = WeightedFitter(GaussianNaiveBayes(), X, y, constraints)
        with pytest.raises(ValueError, match="parameterized"):
            fitter.fit_batch(np.array([[0.5]]))
        # all-zero λ batches are constant-weight and therefore fine
        assert len(fitter.fit_batch(np.zeros((2, 1)))) == 2

    def test_process_pool_matches_serial(self):
        X, y, constraints = _toy_training_setup()
        L = np.array([[0.3, 0.0], [-0.7, 0.2], [1.1, -1.0], [0.0, 0.4]])
        est = LogisticRegression(max_iter=25)
        serial = WeightedFitter(est.clone(), X, y, constraints)
        pooled = WeightedFitter(est.clone(), X, y, constraints, n_jobs=2)
        for m_s, m_p in zip(serial.fit_batch(L), pooled.fit_batch(L)):
            assert np.array_equal(m_s.predict(X), m_p.predict(X))

    def test_invalid_engine_and_n_jobs(self):
        X, y, constraints = _toy_training_setup()
        with pytest.raises(ValueError, match="engine"):
            WeightedFitter(GaussianNaiveBayes(), X, y, constraints,
                           engine="vectorized")
        with pytest.raises(ValueError, match="n_jobs"):
            WeightedFitter(GaussianNaiveBayes(), X, y, constraints,
                           n_jobs=0)


class TestEstimatorBatchHooks:
    def test_naive_bayes_batch_fit_matches_scalar_fits(self):
        X, y, constraints = _toy_training_setup(seed=2)
        rng = np.random.default_rng(9)
        W = rng.uniform(0.2, 3.0, size=(5, len(y)))
        Y = np.where(rng.random((5, len(y))) < 0.1, 1 - y, y)
        proto = GaussianNaiveBayes()
        models = proto.fit_weighted_batch(X, Y, W)
        for b, model in enumerate(models):
            ref = GaussianNaiveBayes().fit(X, Y[b], sample_weight=W[b])
            np.testing.assert_allclose(model.theta_, ref.theta_,
                                       rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(model.var_, ref.var_,
                                       rtol=1e-9, atol=1e-12)
            np.testing.assert_allclose(model.class_prior_, ref.class_prior_,
                                       rtol=1e-12)
            assert np.array_equal(model.predict(X), ref.predict(X))

    def test_naive_bayes_predict_batch_matches_scalar_predict(self):
        X, y, _ = _toy_training_setup(seed=4)
        rng = np.random.default_rng(13)
        models = [
            GaussianNaiveBayes().fit(
                X, y, sample_weight=rng.uniform(0.5, 2.0, size=len(y))
            )
            for _ in range(4)
        ]
        batch = GaussianNaiveBayes.predict_batch(models, X)
        for b, model in enumerate(models):
            assert np.array_equal(batch[b], model.predict(X))


class TestEvaluateLambdaBatch:
    def test_matches_sequential_fit_and_score(self):
        X, y, constraints = _toy_training_setup(seed=6)
        X_val, y_val = X[:150], y[:150]
        val_constraints = [
            Constraint(
                metric=c.metric, epsilon=c.epsilon,
                group_names=c.group_names,
                g1_idx=c.g1_idx[c.g1_idx < 150],
                g2_idx=c.g2_idx[c.g2_idx < 150],
            )
            for c in constraints
        ]
        L = np.array([[0.0, 0.0], [0.5, -0.5], [-1.0, 1.0]])
        est = LogisticRegression(max_iter=30)
        batch_fitter = WeightedFitter(est.clone(), X, y, constraints)
        result = evaluate_lambda_batch(
            batch_fitter, val_constraints, X_val, y_val, L
        )
        serial_fitter = WeightedFitter(est.clone(), X, y, constraints)
        for b in range(len(L)):
            model = serial_fitter.fit(L[b])
            pred = model.predict(X_val)
            want = np.array(
                [c.disparity(y_val, pred) for c in val_constraints]
            )
            assert np.array_equal(result.disparities[b], want)
            assert result.accuracies[b] == accuracy_score(y_val, pred)

    def test_compute_weights_batch_wrapper(self):
        _X, y, constraints = _toy_training_setup(seed=8)
        L = np.array([[0.25, -0.75], [0.0, 0.0]])
        W = compute_weights_batch(len(y), constraints, L, y)
        for b in range(len(L)):
            assert np.array_equal(
                W[b], compute_weights(len(y), constraints, L[b], y)
            )


# -- end-to-end engine equivalence --------------------------------------------


def _split_synthetic(seed=1, n=2400):
    data = make_biased_dataset(
        "synth-equiv", n, ("a", "b"), (0.6, 0.4), (0.5, 0.32), seed=seed,
        n_informative=2, n_group_correlated=1, n_noise=1, n_categorical=0,
    )
    strat = data.sensitive * 2 + data.y
    tr, va, _te = train_val_test_split(len(data), seed=0, stratify=strat)
    return data.subset(tr), data.subset(va)


class TestEngineEquivalence:
    """Compiled and naive engines select identical λ on fixed seeds."""

    @pytest.mark.parametrize("strategy,options,spec", [
        ("grid", {"grid_steps": 8}, "SP <= 0.16 and MR <= 0.3"),
        ("cmaes", {"max_evals": 18}, "SP <= 0.1 and MR <= 0.2"),
        ("hill_climb", {}, "SP <= 0.1 and MR <= 0.2"),
        ("binary_search", {}, "SP <= 0.03"),
        ("binary_search", {}, "FDR <= 0.08"),
        ("grid", {"grid_steps": 8}, "SP <= 0.1"),
    ])
    def test_identical_lambdas_and_history(self, strategy, options, spec):
        train, val = _split_synthetic()
        reports = {}
        for engine in ("naive", "compiled"):
            fair = Engine(strategy, engine=engine, **options).solve(
                Problem(spec), GaussianNaiveBayes(), train, val,
            )
            reports[engine] = fair.report
        naive, compiled = reports["naive"], reports["compiled"]
        assert np.array_equal(naive.lambdas, compiled.lambdas)
        assert naive.n_fits == compiled.n_fits
        assert len(naive.history) == len(compiled.history)
        assert naive.validation["accuracy"] == compiled.validation["accuracy"]

    @pytest.mark.parametrize("estimator_factory,exact_accuracy", [
        (lambda: LogisticRegression(solver="irls", max_iter=60), False),
        (lambda: DecisionTree(max_depth=6), True),
    ], ids=["logistic_irls", "tree_presorted"])
    def test_identical_selection_across_batch_paths(
        self, estimator_factory, exact_accuracy
    ):
        """ISSUE 3: the new estimator batch paths (batched IRLS,
        shared-presort trees) must select the same λ as serial fits
        through the naive engine — exactly for bit-for-bit trees,
        within reduction-order round-off for IRLS accuracies."""
        train, val = _split_synthetic()
        reports = {}
        for engine in ("naive", "compiled"):
            fair = Engine("grid", engine=engine, grid_steps=5).solve(
                Problem("SP <= 0.16 and MR <= 0.3"),
                estimator_factory(), train, val,
            )
            reports[engine] = fair.report
        naive, compiled = reports["naive"], reports["compiled"]
        assert np.array_equal(naive.lambdas, compiled.lambdas)
        assert naive.n_fits == compiled.n_fits
        assert len(naive.history) == len(compiled.history)
        if exact_accuracy:
            assert (
                naive.validation["accuracy"]
                == compiled.validation["accuracy"]
            )
        else:
            assert naive.validation["accuracy"] == pytest.approx(
                compiled.validation["accuracy"], abs=1e-9
            )
        # the compiled side actually exercised the batch protocol
        assert compiled.fit_paths.get("batch_protocol", 0) > 0
        assert naive.fit_paths.get("batch_protocol", 0) == 0

    def test_identical_weights_through_fitters(self):
        train, _val = _split_synthetic()
        problem = Problem("SP <= 0.05 and FPR <= 0.1")
        constraints = problem.bind(train)
        lambdas = np.array([1.7, -0.9])
        naive = WeightedFitter(
            GaussianNaiveBayes(), train.X, train.y, constraints,
            engine="naive",
        )._weights_for(lambdas, None, False)
        compiled = WeightedFitter(
            GaussianNaiveBayes(), train.X, train.y, constraints,
            engine="compiled",
        )._weights_for(lambdas, None, False)
        assert np.array_equal(naive, compiled)

    def test_engine_knob_validation(self):
        from repro.core.exceptions import SpecificationError

        with pytest.raises(SpecificationError, match="engine"):
            Engine("grid", engine="turbo")
