"""Background job handles: terminal-state machine, cancel, timeout.

ISSUE 8 satellite: ``submit_job``'s edge cases were untested — a result
read before completion, double waits, tracebacks surviving into
``describe()``, and the new ``cancel()`` / ``timeout_s`` transitions.
The invariant throughout: a handle reaches exactly **one** terminal
status, first writer wins, and late outcomes are discarded.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.exceptions import SpecificationError
from repro.core.executor import JOB_TERMINAL, JobHandle, submit_job


def _gated():
    """A function that blocks until released, plus its control events."""
    entered = threading.Event()
    release = threading.Event()

    def body():
        entered.set()
        release.wait(10)
        return "late-result"

    return body, entered, release


class TestLifecycle:
    def test_result_is_none_before_completion(self):
        body, entered, release = _gated()
        handle = submit_job(body)
        entered.wait(10)
        assert handle.status == "running"
        assert handle.result is None
        assert handle.error is None
        release.set()
        assert handle.wait(10)
        assert handle.status == "done"
        assert handle.result == "late-result"

    def test_double_wait_is_safe(self):
        handle = submit_job(lambda: 7)
        assert handle.wait(10)
        assert handle.wait(10)       # the event stays set
        assert handle.wait(0.0)      # and a zero wait still reports done
        assert handle.result == 7

    def test_terminal_statuses_catalog(self):
        assert JOB_TERMINAL == {"done", "error", "timeout", "cancelled"}

    def test_describe_is_json_friendly(self):
        handle = submit_job(lambda: 1, name="probe")
        handle.wait(10)
        out = handle.describe()
        assert out["name"] == "probe"
        assert out["status"] == "done"
        assert out["finished_at"] >= out["submitted_at"]
        assert "error" not in out
        assert "traceback" not in out


class TestErrors:
    def test_exception_preserves_traceback_in_describe(self):
        def inner_boom():
            raise ValueError("the-distinctive-message")

        handle = submit_job(inner_boom)
        handle.wait(10)
        assert handle.status == "error"
        assert isinstance(handle.error, ValueError)
        out = handle.describe()
        assert out["error"] == "ValueError: the-distinctive-message"
        # the formatted traceback names the failing frame, so a polled
        # job failure is debuggable without server-side logs
        assert "inner_boom" in out["traceback"]
        assert "the-distinctive-message" in out["traceback"]

    def test_failed_job_has_no_result(self):
        handle = submit_job(lambda: 1 / 0)
        handle.wait(10)
        assert handle.status == "error"
        assert handle.result is None


class TestCancel:
    def test_cancel_pending_job_never_runs_fn(self):
        ran = threading.Event()
        handle = JobHandle(9999, name="never-ran")
        assert handle.cancel()
        # simulate the worker arriving after the cancel won the race
        handle._run(ran.set, (), {})
        assert not ran.is_set()
        assert handle.status == "cancelled"

    def test_cancel_running_job_discards_its_result(self):
        body, entered, release = _gated()
        handle = submit_job(body)
        entered.wait(10)
        assert handle.cancel()
        assert handle.status == "cancelled"
        assert isinstance(handle.error, RuntimeError)
        release.set()
        time.sleep(0.05)  # let the worker finish and lose the race
        assert handle.status == "cancelled"
        assert handle.result is None

    def test_cancel_is_idempotent_and_loses_to_done(self):
        handle = submit_job(lambda: "kept")
        handle.wait(10)
        assert not handle.cancel()   # already terminal: no transition
        assert handle.status == "done"
        assert handle.result == "kept"

    def test_wait_returns_on_cancel(self):
        body, entered, _release = _gated()
        handle = submit_job(body)
        entered.wait(10)
        handle.cancel()
        assert handle.wait(10)       # cancellation unblocks waiters


class TestTimeout:
    def test_slow_job_times_out(self):
        body, entered, release = _gated()
        handle = submit_job(body, timeout_s=0.05)
        entered.wait(10)
        assert handle.wait(10)
        assert handle.status == "timeout"
        assert isinstance(handle.error, TimeoutError)
        assert "0.05s budget" in str(handle.error)
        release.set()
        time.sleep(0.05)
        assert handle.status == "timeout"  # late result discarded
        assert handle.result is None

    def test_fast_job_beats_its_timeout(self):
        handle = submit_job(lambda: "quick", timeout_s=30.0)
        assert handle.wait(10)
        assert handle.status == "done"
        assert handle.result == "quick"
        assert handle._timer is None  # the timer was disarmed

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(SpecificationError, match="timeout_s"):
            submit_job(lambda: 1, timeout_s=0)


class TestOnDone:
    def test_callback_fires_once_with_terminal_handle(self):
        seen = []
        handle = submit_job(lambda: 3, on_done=lambda h: seen.append(
            (h.status, h.result),
        ))
        handle.wait(10)
        assert seen == [("done", 3)]

    def test_callback_sees_error_status(self):
        seen = []
        handle = submit_job(
            lambda: 1 / 0, on_done=lambda h: seen.append(h.status),
        )
        handle.wait(10)
        assert seen == ["error"]

    def test_callback_not_refired_by_late_transitions(self):
        seen = []
        body, entered, release = _gated()
        handle = submit_job(body, on_done=lambda h: seen.append(h.status))
        entered.wait(10)
        handle.cancel()
        release.set()
        handle.wait(10)
        time.sleep(0.05)
        assert seen == ["cancelled"]

    def test_broken_callback_does_not_poison_the_job(self):
        def bad_observer(_handle):
            raise RuntimeError("observer bug")

        with pytest.warns(RuntimeWarning, match="on_done callback"):
            handle = submit_job(lambda: 5, on_done=bad_observer)
            handle.wait(10)
            # the warning fires on the worker thread inside _finish;
            # wait for publication before leaving the warns block
            time.sleep(0.05)
        assert handle.status == "done"
        assert handle.result == 5
