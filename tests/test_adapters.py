"""Adapter conformance: external estimators behind the engine protocol.

Three layers:

* protocol unit tests against duck-typed stand-ins (always run);
* engine equivalence — an adapter-wrapped *weight-equivalent* in-repo
  model must select the identical λ as the bare model on a fixed
  scenario (always run);
* sklearn conformance — the batch-protocol and engine runs against
  adapter-wrapped ``sklearn`` ``LogisticRegression`` /
  ``DecisionTreeClassifier`` (auto-skipped when sklearn is absent).
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.api import Engine, Problem
from repro.core.fitter import WeightedFitter
from repro.core.fairness_metrics import METRIC_FACTORIES
from repro.core.spec import Constraint
from repro.datasets import load_scenario
from repro.ml import GaussianNaiveBayes, LogisticRegression
from repro.ml.adapters import (
    ExternalEstimatorAdapter,
    external_model_names,
    register_external_model,
    resolve_model,
)
from repro.ml.adapters import _EXTERNAL_MODELS
from repro.ml.model_selection import train_val_test_split


class DuckWeighted:
    """Minimal foreign estimator with native sample_weight support."""

    def __init__(self, inner_factory=GaussianNaiveBayes):
        self.inner_factory = inner_factory
        self.inner = inner_factory()
        self.fit_calls = 0

    def fit(self, X, y, sample_weight=None):
        self.fit_calls += 1
        self.inner.fit(X, y, sample_weight=sample_weight)
        return self

    def predict(self, X):
        return self.inner.predict(X)

    def predict_proba(self, X):
        return self.inner.predict_proba(X)


class DuckUnweighted:
    """Foreign estimator whose fit has no sample_weight parameter."""

    def __init__(self):
        self.inner = GaussianNaiveBayes()

    def fit(self, X, y):
        self.inner.fit(X, y)
        return self

    def predict(self, X):
        return self.inner.predict(X)


class DuckHardLabels:
    """predict-only foreign model (no predict_proba at all)."""

    def fit(self, X, y, sample_weight=None):
        self.threshold = float(np.average(X[:, 0], weights=sample_weight))
        return self

    def predict(self, X):
        return (X[:, 0] > self.threshold).astype(int)


@pytest.fixture()
def xyw():
    rng = np.random.default_rng(17)
    X = rng.normal(size=(200, 3))
    y = (X[:, 0] + 0.4 * rng.normal(size=200) > 0).astype(np.int64)
    w = rng.uniform(0.2, 3.0, size=200)
    return X, y, w


class TestAdapterProtocol:
    def test_requires_estimator_with_fit_and_predict(self):
        with pytest.raises(ValueError, match="requires an estimator"):
            ExternalEstimatorAdapter()
        with pytest.raises(TypeError, match="callable fit"):
            ExternalEstimatorAdapter(object())
        with pytest.raises(ValueError, match="weight_mode"):
            ExternalEstimatorAdapter(DuckWeighted(), weight_mode="psychic")

    def test_native_weight_detection(self, xyw):
        X, y, w = xyw
        native = ExternalEstimatorAdapter(DuckWeighted())
        assert native._native_weight
        replicated = ExternalEstimatorAdapter(DuckUnweighted())
        assert not replicated._native_weight
        assert native.supports_sample_weight
        assert replicated.supports_sample_weight

    def test_var_keyword_fit_is_not_treated_as_native(self):
        # regression: fit(X, y, **kwargs) must NOT be presumed to honor
        # sample_weight — a swallowing implementation would silently
        # train every λ candidate unweighted
        class Swallows:
            def fit(self, X, y, **kwargs):
                self.saw = sorted(kwargs)
                return self

            def predict(self, X):
                return np.zeros(len(X), dtype=int)

        adapted = ExternalEstimatorAdapter(Swallows())
        assert not adapted._native_weight
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 2))
        y = (X[:, 0] > 0).astype(np.int64)
        adapted.fit(X, y, sample_weight=rng.uniform(0.5, 2.0, size=40))
        # the replication path called the inner fit without the keyword
        assert adapted.estimator.saw == []
        forced = ExternalEstimatorAdapter(Swallows(), weight_mode="native")
        forced.fit(X, y, sample_weight=np.ones(40))
        assert forced.estimator.saw == ["sample_weight"]

    def test_native_path_matches_bare_estimator(self, xyw):
        X, y, w = xyw
        adapted = ExternalEstimatorAdapter(DuckWeighted()).fit(
            X, y, sample_weight=w
        )
        bare = GaussianNaiveBayes().fit(X, y, sample_weight=w)
        assert np.array_equal(adapted.predict(X), bare.predict(X))
        np.testing.assert_array_equal(
            adapted.predict_proba(X), bare.predict_proba(X)
        )

    def test_replication_path_trains_unweighted_inner(self, xyw):
        X, y, w = xyw
        adapted = ExternalEstimatorAdapter(DuckUnweighted())
        adapted.fit(X, y, sample_weight=w)
        pred = adapted.predict(X)
        assert pred.dtype == np.int64
        assert set(np.unique(pred)) <= {0, 1}

    def test_weight_mode_replicate_forces_replication(self, xyw):
        X, y, w = xyw
        forced = ExternalEstimatorAdapter(
            DuckWeighted(), weight_mode="replicate"
        )
        assert not forced._native_weight
        forced.fit(X, y, sample_weight=w)
        # the inner fit saw replicated rows, not the weight vector
        assert forced.estimator.fit_calls == 1

    def test_predict_proba_one_hot_fallback(self, xyw):
        X, y, _ = xyw
        adapted = ExternalEstimatorAdapter(DuckHardLabels()).fit(X, y)
        proba = adapted.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert np.array_equal(proba.sum(axis=1), np.ones(len(X)))
        assert np.array_equal(proba.argmax(axis=1), adapted.predict(X))

    def test_unfitted_predict_raises(self, xyw):
        X, _, _ = xyw
        with pytest.raises(RuntimeError, match="not fitted"):
            ExternalEstimatorAdapter(DuckWeighted()).predict(X)

    def test_clone_restarts_from_unfitted_prototype(self, xyw):
        X, y, w = xyw
        adapted = ExternalEstimatorAdapter(DuckHardLabels())
        adapted.fit(X, y, sample_weight=w)
        fresh = adapted.clone()
        assert isinstance(fresh, ExternalEstimatorAdapter)
        assert fresh is not adapted
        assert fresh.estimator is not adapted.estimator
        assert not getattr(fresh, "_fitted", False)
        assert not hasattr(fresh.estimator, "threshold")

    def test_get_params_is_fingerprint_stable_across_clones(self, xyw):
        X, y, w = xyw
        a = ExternalEstimatorAdapter(DuckHardLabels())
        b = a.clone()
        assert a.get_params() == b.get_params()
        a.fit(X, y, sample_weight=w)
        # fitting must not change the hyperparameter fingerprint the
        # fit cache keys on
        assert a.get_params() == b.get_params()

    def test_batch_protocol_refit_loop_matches_serial(self, xyw):
        X, y, w = xyw
        rng = np.random.default_rng(3)
        B = 3
        Y = np.where(rng.random((B, len(y))) < 0.1, 1 - y, y)
        W = rng.uniform(0.2, 2.0, size=(B, len(y)))
        proto = ExternalEstimatorAdapter(DuckWeighted())
        assert proto.supports_batch_fit
        models = proto.fit_weighted_batch(X, Y, W)
        assert len(models) == B
        preds = ExternalEstimatorAdapter.predict_batch(models, X)
        assert preds.shape == (B, len(X))
        for b in range(B):
            ref = ExternalEstimatorAdapter(DuckWeighted()).fit(
                X, Y[b], sample_weight=W[b]
            )
            assert np.array_equal(models[b].predict(X), ref.predict(X))
            assert np.array_equal(preds[b], ref.predict(X))


class TestResolveModel:
    def test_base_classifier_passes_through(self):
        est = GaussianNaiveBayes()
        assert resolve_model(est) is est

    def test_duck_object_gets_wrapped(self):
        resolved = resolve_model(DuckWeighted())
        assert isinstance(resolved, ExternalEstimatorAdapter)

    def test_short_names_resolve(self):
        assert isinstance(resolve_model("LR"), LogisticRegression)
        assert isinstance(resolve_model("lr"), LogisticRegression)

    def test_ext_path_resolves_and_wraps(self):
        resolved = resolve_model("ext:repro.ml:GaussianNaiveBayes")
        assert isinstance(resolved, ExternalEstimatorAdapter)
        assert isinstance(resolved.estimator, GaussianNaiveBayes)
        dotted = resolve_model("ext:repro.ml.GaussianNaiveBayes")
        assert isinstance(dotted.estimator, GaussianNaiveBayes)

    def test_ext_path_errors(self):
        with pytest.raises(ImportError, match="not importable"):
            resolve_model("ext:definitely_not_a_module:Thing")
        with pytest.raises(ImportError, match="no attribute"):
            resolve_model("ext:repro.ml:NotAClass")
        with pytest.raises(ValueError, match="cannot parse"):
            resolve_model("ext:justoneword")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            resolve_model("no_such_model")

    def test_registry_hook(self):
        register_external_model("_duck", DuckWeighted)
        try:
            assert "_duck" in external_model_names()
            resolved = resolve_model("_duck")
            assert isinstance(resolved, ExternalEstimatorAdapter)
            # a registered BaseClassifier factory is not double-wrapped
            register_external_model("_native", GaussianNaiveBayes)
            assert isinstance(resolve_model("_native"), GaussianNaiveBayes)
        finally:
            _EXTERNAL_MODELS.pop("_duck", None)
            _EXTERNAL_MODELS.pop("_native", None)

    def test_register_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            register_external_model("", DuckWeighted)
        with pytest.raises(ValueError):
            register_external_model("x", "not-callable")


def _scenario_splits(n=2400, seed=0):
    data = load_scenario("label_noise", n=n, seed=seed)
    strat = data.sensitive * 2 + data.y
    tr, va, te = train_val_test_split(len(data), seed=seed, stratify=strat)
    return data.subset(tr), data.subset(va), data.subset(te)


class TestEngineEquivalence:
    """Adapter-wrapped weight-equivalent models select identical λ."""

    def test_binary_search_identical_lambda(self):
        train, val, _ = _scenario_splits()
        problem = Problem("SP <= 0.05")
        bare = Engine("binary_search").solve(
            problem, GaussianNaiveBayes(), train, val
        )
        adapted = Engine("binary_search").solve(
            problem, ExternalEstimatorAdapter(DuckWeighted()), train, val
        )
        assert np.array_equal(bare.report.lambdas, adapted.report.lambdas)
        assert (
            bare.report.validation["accuracy"]
            == adapted.report.validation["accuracy"]
        )

    def test_grid_identical_lambda_through_batch_paths(self):
        # bare lbfgs logistic fits serially (supports_batch_fit False);
        # the adapter's refit loop is serial semantics behind the batch
        # hook — both must land on the same grid point
        train, val, _ = _scenario_splits()
        problem = Problem("SP <= 0.08")
        factory = lambda: LogisticRegression(max_iter=120)  # noqa: E731
        bare = Engine("grid", grid_steps=8, grid_max=0.4).solve(
            problem, factory(), train, val
        )
        adapted = Engine("grid", grid_steps=8, grid_max=0.4).solve(
            problem,
            ExternalEstimatorAdapter(DuckWeighted(inner_factory=factory)),
            train, val,
        )
        assert np.array_equal(bare.report.lambdas, adapted.report.lambdas)

    def test_adapter_runs_inside_weighted_fitter_with_fit_cache(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(150, 3))
        y = (X[:, 0] > 0).astype(np.int64)
        groups = rng.integers(0, 2, size=150)
        constraint = Constraint(
            metric=METRIC_FACTORIES["SP"](), epsilon=0.05,
            group_names=("a", "b"),
            g1_idx=np.nonzero(groups == 0)[0],
            g2_idx=np.nonzero(groups == 1)[0],
        )
        fitter = WeightedFitter(
            ExternalEstimatorAdapter(DuckWeighted()), X, y, [constraint]
        )
        fitter.fit(np.array([0.3]))
        fitter.fit(np.array([0.3]))  # identical resolved weights
        assert fitter.fit_cache_hits == 1
        models = fitter.fit_batch(np.array([[0.0], [0.3], [0.5]]))
        assert len(models) == 3
        assert fitter.fit_paths.get("batch_protocol", 0) >= 1


_HAS_SKLEARN = importlib.util.find_spec("sklearn") is not None


@pytest.mark.skipif(not _HAS_SKLEARN, reason="sklearn not installed")
class TestSklearnConformance:
    """Run the conformance surface against real sklearn estimators.

    Skipped cleanly when sklearn is not installed (this container does
    not ship it; CI environments that do exercise these paths).
    """

    @pytest.fixture(params=["logistic", "tree"])
    def sk_adapter_factory(self, request):
        from sklearn.linear_model import LogisticRegression as SkLR
        from sklearn.tree import DecisionTreeClassifier as SkDT

        if request.param == "logistic":
            return lambda: ExternalEstimatorAdapter(SkLR(max_iter=200))
        return lambda: ExternalEstimatorAdapter(
            SkDT(max_depth=5, random_state=0)
        )

    def test_batch_protocol_conformance(self, sk_adapter_factory, xyw):
        X, y, w = xyw
        rng = np.random.default_rng(1)
        B = 3
        Y = np.where(rng.random((B, len(y))) < 0.1, 1 - y, y)
        W = rng.uniform(0.2, 2.0, size=(B, len(y)))
        proto = sk_adapter_factory()
        models = proto.fit_weighted_batch(X, Y, W)
        preds = ExternalEstimatorAdapter.predict_batch(models, X)
        for b in range(B):
            ref = sk_adapter_factory().fit(X, Y[b], sample_weight=W[b])
            assert np.array_equal(preds[b], ref.predict(X))

    def test_engine_end_to_end(self, sk_adapter_factory):
        train, val, test = _scenario_splits()
        model = Engine("binary_search").solve(
            Problem("SP <= 0.05"), sk_adapter_factory(), train, val
        )
        audit = model.audit(test)
        assert 0.5 < audit["accuracy"] <= 1.0
        assert model.report.feasible

    def test_identical_lambda_vs_weight_equivalent_inrepo_model(self):
        # sklearn's liblinear/lbfgs logistic is not numerically identical
        # to the in-repo one, so the λ-equivalence claim is tested with
        # the adapter wrapping the *in-repo* estimator as a foreign duck
        # (above); here we assert the sklearn run is deterministic
        from sklearn.tree import DecisionTreeClassifier as SkDT

        train, val, _ = _scenario_splits()
        runs = [
            Engine("binary_search").solve(
                Problem("SP <= 0.05"),
                ExternalEstimatorAdapter(SkDT(max_depth=5, random_state=0)),
                train, val,
            ).report.lambdas
            for _ in range(2)
        ]
        assert np.array_equal(runs[0], runs[1])
