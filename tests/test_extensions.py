"""Tests for the extension features beyond the paper's core algorithms.

* composite specs: equalized odds (FPR+FNR) and predictive parity
  (FOR+FDR) helpers;
* subsample-based λ-range pruning (the paper's §8 future-work item);
* timing utilities.
"""

import numpy as np
import pytest

from repro import FairnessSpec, OmniFair
from repro.analysis import stopwatch, time_call
from repro.core.fitter import WeightedFitter
from repro.core.spec import (
    bind_specs,
    equalized_odds_specs,
    predictive_parity_specs,
)
from repro.ml import LogisticRegression


class TestCompositeSpecs:
    def test_equalized_odds_is_fpr_plus_fnr(self):
        specs = equalized_odds_specs(0.05)
        assert [s.metric.name for s in specs] == ["FPR", "FNR"]
        assert all(s.epsilon == 0.05 for s in specs)

    def test_predictive_parity_is_for_plus_fdr(self):
        specs = predictive_parity_specs(0.05)
        assert [s.metric.name for s in specs] == ["FOR", "FDR"]

    def test_equalized_odds_end_to_end(self, two_group_splits):
        train, val, _ = two_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=200), equalized_odds_specs(0.1)
        ).fit(train, val)
        report = of.validation_report_
        assert len(report["disparities"]) == 2
        assert report["feasible"]

    def test_custom_grouping_propagated(self, three_group_splits):
        from repro.core.grouping import by_groups

        specs = equalized_odds_specs(0.1, grouping=by_groups("A", "B"))
        train, _, _ = three_group_splits
        constraints = bind_specs(specs, train)
        assert len(constraints) == 2  # one per metric, single pair each


class TestSubsamplePruning:
    def test_fitter_prepares_stratified_subsample(self, two_group_splits):
        train, _, _ = two_group_splits
        spec = FairnessSpec("SP", 0.05)
        fitter = WeightedFitter(
            LogisticRegression(max_iter=150), train.X, train.y,
            bind_specs([spec], train), subsample=0.3,
        )
        assert fitter._sub_idx is not None
        frac = len(fitter._sub_idx) / len(train.y)
        assert 0.2 < frac < 0.4
        # both labels present
        assert set(np.unique(train.y[fitter._sub_idx])) == {0, 1}

    def test_subsample_constraints_remapped(self, two_group_splits):
        train, _, _ = two_group_splits
        spec = FairnessSpec("SP", 0.05)
        fitter = WeightedFitter(
            LogisticRegression(max_iter=150), train.X, train.y,
            bind_specs([spec], train), subsample=0.3,
        )
        sub_c = fitter._sub_constraints[0]
        n_sub = len(fitter._sub_idx)
        assert sub_c.g1_idx.max() < n_sub
        assert sub_c.g2_idx.max() < n_sub
        assert len(sub_c.g1_idx) + len(sub_c.g2_idx) <= n_sub

    def test_invalid_fraction_rejected(self, two_group_splits):
        train, _, _ = two_group_splits
        spec = FairnessSpec("SP", 0.05)
        with pytest.raises(ValueError, match="subsample"):
            WeightedFitter(
                LogisticRegression(), train.X, train.y,
                bind_specs([spec], train), subsample=1.5,
            )

    def test_use_subsample_without_config_rejected(self, two_group_splits):
        train, _, _ = two_group_splits
        spec = FairnessSpec("SP", 0.05)
        fitter = WeightedFitter(
            LogisticRegression(max_iter=150), train.X, train.y,
            bind_specs([spec], train),
        )
        with pytest.raises(ValueError, match="use_subsample"):
            fitter.fit(np.array([0.1]), use_subsample=True)

    def test_pruned_fit_matches_unpruned_quality(self, two_group_splits):
        train, val, _ = two_group_splits
        plain = OmniFair(
            LogisticRegression(max_iter=150), FairnessSpec("SP", 0.05)
        ).fit(train, val)
        pruned = OmniFair(
            LogisticRegression(max_iter=150), FairnessSpec("SP", 0.05),
            subsample=0.3,
        ).fit(train, val)
        assert pruned.feasible_
        assert pruned.validation_report_["feasible"]
        # final quality must be comparable (both satisfy the constraint)
        assert (
            pruned.validation_report_["accuracy"]
            >= plain.validation_report_["accuracy"] - 0.05
        )


class TestTiming:
    def test_stopwatch_records_positive(self):
        with stopwatch() as t:
            sum(range(1000))
        assert t["seconds"] > 0

    def test_stopwatch_records_on_exception(self):
        with pytest.raises(RuntimeError):
            with stopwatch() as t:
                raise RuntimeError("boom")
        assert t["seconds"] is not None

    def test_time_call_returns_result(self):
        result, seconds = time_call(lambda a, b: a + b, 2, b=3)
        assert result == 5
        assert seconds >= 0
