"""Tests for Algorithm 1 (single-λ tuning) and the monotonicity it relies on."""

import numpy as np
import pytest

from repro.core.exceptions import InfeasibleConstraintError
from repro.core.fitter import WeightedFitter
from repro.core.single import lambda_grid_search, tune_single_lambda
from repro.core.spec import FairnessSpec, bind_specs
from repro.ml import LogisticRegression


@pytest.fixture()
def sp_setup(two_group_splits):
    train, val, _ = two_group_splits
    spec = FairnessSpec("SP", 0.03)
    tc = bind_specs([spec], train)
    vc = bind_specs([spec], val)[0]
    fitter = WeightedFitter(LogisticRegression(max_iter=200), train.X,
                            train.y, tc)
    return fitter, vc, val


class TestTuneSingleLambdaSP:
    def test_returns_feasible_model(self, sp_setup):
        fitter, vc, val = sp_setup
        result = tune_single_lambda(fitter, vc, val.X, val.y)
        assert result.feasible
        pred = result.model.predict(val.X)
        # evaluate with the *original* orientation constraint
        assert abs(vc.disparity(val.y, pred)) <= 0.03 + 1e-9

    def test_history_records_fits(self, sp_setup):
        fitter, vc, val = sp_setup
        result = tune_single_lambda(fitter, vc, val.X, val.y)
        assert len(result.history) == result.n_fits
        assert result.history[0][0] == 0.0  # first fit is λ=0

    def test_loose_epsilon_short_circuits(self, two_group_splits):
        train, val, _ = two_group_splits
        spec = FairnessSpec("SP", 0.9)  # trivially satisfied
        tc = bind_specs([spec], train)
        vc = bind_specs([spec], val)[0]
        fitter = WeightedFitter(LogisticRegression(max_iter=200), train.X,
                                train.y, tc)
        result = tune_single_lambda(fitter, vc, val.X, val.y)
        assert result.lam == 0.0
        assert result.n_fits == 1  # only the unconstrained fit

    def test_tighter_epsilon_costs_accuracy(self, two_group_splits):
        train, val, _ = two_group_splits
        accs = {}
        for eps in (0.2, 0.02):
            spec = FairnessSpec("SP", eps)
            tc = bind_specs([spec], train)
            vc = bind_specs([spec], val)[0]
            fitter = WeightedFitter(LogisticRegression(max_iter=200),
                                    train.X, train.y, tc)
            result = tune_single_lambda(fitter, vc, val.X, val.y)
            pred = result.model.predict(val.X)
            accs[eps] = float(np.mean(pred == val.y))
        assert accs[0.2] >= accs[0.02] - 0.01

    def test_infeasible_raises_with_best_model(self, sp_setup):
        # λ capped far below the feasible region: the probe cannot move the
        # disparity at all, so Algorithm 1 must report infeasibility
        fitter, vc, val = sp_setup
        with pytest.raises(InfeasibleConstraintError) as excinfo:
            tune_single_lambda(fitter, vc, val.X, val.y, lambda_max=1e-6)
        assert excinfo.value.best_model is not None


class TestFDRLinearSearchPath:
    def test_parameterized_metric_feasible(self, two_group_splits):
        train, val, _ = two_group_splits
        spec = FairnessSpec("FDR", 0.05)
        tc = bind_specs([spec], train)
        vc = bind_specs([spec], val)[0]
        fitter = WeightedFitter(LogisticRegression(max_iter=200), train.X,
                                train.y, tc)
        assert fitter.parameterized
        result = tune_single_lambda(fitter, vc, val.X, val.y, delta=0.02)
        pred = result.model.predict(val.X)
        assert abs(vc.disparity(val.y, pred)) <= 0.05 + 1e-9


class TestEmpiricalMonotonicity:
    """Lemma 2's observable consequence: FP(θ*(λ)) is ~monotone in λ."""

    def test_sp_disparity_increases_with_lambda(self, two_group_splits):
        train, _, _ = two_group_splits
        spec = FairnessSpec("SP", 0.03)
        tc = bind_specs([spec], train)
        constraint = tc[0]
        fitter = WeightedFitter(LogisticRegression(max_iter=300), train.X,
                                train.y, tc)
        disparities = []
        for lam in (-0.3, -0.1, 0.0, 0.1, 0.3):
            model = fitter.fit(np.array([lam]))
            pred = model.predict(train.X)
            disparities.append(constraint.disparity(train.y, pred))
        # allow small violations from optimization noise
        diffs = np.diff(disparities)
        assert np.all(diffs > -0.02)
        assert disparities[-1] > disparities[0]

    def test_accuracy_peaks_at_lambda_zero(self, two_group_splits):
        train, _, _ = two_group_splits
        spec = FairnessSpec("SP", 0.03)
        tc = bind_specs([spec], train)
        fitter = WeightedFitter(LogisticRegression(max_iter=300), train.X,
                                train.y, tc)
        accs = {}
        for lam in (-0.5, 0.0, 0.5):
            model = fitter.fit(np.array([lam]))
            accs[lam] = float(np.mean(model.predict(train.X) == train.y))
        assert accs[0.0] >= accs[-0.5] - 0.01
        assert accs[0.0] >= accs[0.5] - 0.01


class TestLambdaGridSearch:
    def test_grid_finds_feasible(self, sp_setup):
        # a fine grid is needed: the feasible λ band for a tight ε can be
        # narrower than a coarse grid step (the Table 8 phenomenon)
        fitter, vc, val = sp_setup
        grid = np.linspace(-1.0, 1.0, 201)
        result = lambda_grid_search(fitter, vc, val.X, val.y, grid)
        pred = result.model.predict(val.X)
        assert abs(vc.disparity(val.y, pred)) <= 0.03 + 1e-9

    def test_grid_costs_full_sweep(self, sp_setup):
        fitter, vc, val = sp_setup
        grid = np.linspace(-0.5, 0.5, 101)
        result = lambda_grid_search(fitter, vc, val.X, val.y, grid)
        assert result.n_fits >= len(grid)

    def test_infeasible_grid_raises(self, sp_setup):
        fitter, vc, val = sp_setup
        with pytest.raises(InfeasibleConstraintError):
            lambda_grid_search(fitter, vc, val.X, val.y, [0.0])


class TestWarmStartFitter:
    def test_warm_start_produces_distinct_snapshots(self, two_group_splits):
        train, _, _ = two_group_splits
        spec = FairnessSpec("SP", 0.03)
        tc = bind_specs([spec], train)
        fitter = WeightedFitter(
            LogisticRegression(max_iter=200), train.X, train.y, tc,
            warm_start=True,
        )
        m1 = fitter.fit(np.array([0.0]))
        m2 = fitter.fit(np.array([0.5]))
        assert m1 is not m2
        assert not np.allclose(m1.coef_, m2.coef_)
