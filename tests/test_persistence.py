"""Persistence round-trips for full fitted artifacts, and failure paths."""

import io
import pickle

import numpy as np
import pytest

from repro import FairModel, FairnessSpec, OmniFair, fit_fair
from repro.cli import main
from repro.ml import LogisticRegression
from repro.ml.persistence import (
    _FORMAT_VERSION,
    _MAGIC,
    ModelFormatError,
    load_model,
    save_model,
)


@pytest.fixture(scope="module")
def fitted(two_group_splits):
    train, val, test = two_group_splits
    fm = fit_fair(
        LogisticRegression(max_iter=200), "SP <= 0.05", train, val,
    )
    return fm, test


class TestFairModelRoundTrip:
    def test_predictions_survive(self, fitted, tmp_path):
        fm, test = fitted
        path = tmp_path / "fm.pkl"
        fm.save(path)
        loaded = FairModel.load(path)
        assert np.array_equal(loaded.predict(test.X), fm.predict(test.X))
        assert np.allclose(
            loaded.predict_proba(test.X), fm.predict_proba(test.X)
        )

    def test_report_and_audit_survive(self, fitted, tmp_path):
        fm, test = fitted
        path = tmp_path / "fm.pkl"
        fm.save(path)
        loaded = FairModel.load(path)
        assert loaded.report.lambdas.tolist() == fm.report.lambdas.tolist()
        assert loaded.report.strategy == fm.report.strategy
        assert loaded.audit(test) == fm.audit(test)
        assert loaded.specs.to_string() == fm.specs.to_string()

    def test_load_rejects_non_fair_model(self, tmp_path):
        path = tmp_path / "est.pkl"
        save_model(LogisticRegression(), path)
        with pytest.raises(Exception, match="FairModel"):
            FairModel.load(path)


class TestOmniFairRoundTrip:
    def test_entire_fitted_trainer(self, two_group_splits, tmp_path):
        train, val, test = two_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=200), FairnessSpec("SP", 0.05)
        ).fit(train, val)
        path = tmp_path / "of.pkl"
        save_model(of, path)
        loaded = load_model(path)
        assert np.array_equal(loaded.predict(test.X), of.predict(test.X))
        assert loaded.lambdas_.tolist() == of.lambdas_.tolist()
        assert loaded.evaluate(test) == of.evaluate(test)


class TestFailurePaths:
    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"magic": "not-a-repro-model", "model": 1}, fh)
        with pytest.raises(ModelFormatError, match="bad envelope"):
            load_model(path)

    def test_newer_format_version(self, tmp_path):
        path = tmp_path / "future.pkl"
        with open(path, "wb") as fh:
            pickle.dump(
                {
                    "magic": _MAGIC,
                    "format_version": _FORMAT_VERSION + 1,
                    "model": 1,
                },
                fh,
            )
        with pytest.raises(ModelFormatError, match="newer"):
            load_model(path)

    def test_not_a_pickle(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"definitely not a pickle")
        with pytest.raises(ModelFormatError, match="not a repro model"):
            load_model(path)


class TestCLISaveFlow:
    def test_train_spec_save_end_to_end(self, tmp_path):
        """Acceptance: train --spec "FPR <= .05 and FNR <= .05" --save."""
        out = io.StringIO()
        path = tmp_path / "m.pkl"
        code = main(
            [
                "train", "--dataset", "adult", "--rows", "1200",
                "--spec", "FPR <= 0.05 and FNR <= 0.05",
                "--save", str(path),
            ],
            out=out,
        )
        assert code == 0, out.getvalue()
        loaded = FairModel.load(path)
        assert loaded.report.lambdas.shape == (2,)
        assert [s.metric.name for s in loaded.specs] == ["FPR", "FNR"]
        # the artifact re-audits on fresh data without the trainer
        from repro.datasets import load

        data = load("adult", n=800, seed=3)
        audit = loaded.audit(data)
        assert set(audit) == {
            "accuracy", "disparities", "violations", "feasible",
        }


class TestEnvelopeExtras:
    def test_extra_fields_round_trip(self, fitted, tmp_path):
        fm, _ = fitted
        path = tmp_path / "fm.pkl"
        fm.save(path)
        _, envelope = load_model(path, with_envelope=True)
        extra = envelope["extra"]
        assert extra["fairmodel_format_version"] == 1
        assert extra["spec_canonical"] == "SP <= 0.05"

    def test_unknown_envelope_key_warns_not_crashes(self, tmp_path):
        path = tmp_path / "odd.pkl"
        save_model(LogisticRegression(), path)
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
        envelope["surprise"] = "from the future"
        with open(path, "wb") as fh:
            pickle.dump(envelope, fh)
        with pytest.warns(RuntimeWarning, match="surprise"):
            load_model(path)

    def test_unknown_extra_key_warns_on_fairmodel_load(
        self, fitted, tmp_path
    ):
        fm, test = fitted
        path = tmp_path / "fm.pkl"
        fm.save(path)
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
        envelope["extra"]["novel_field"] = 1
        with open(path, "wb") as fh:
            pickle.dump(envelope, fh)
        with pytest.warns(RuntimeWarning, match="novel_field"):
            loaded = FairModel.load(path)
        assert np.array_equal(loaded.predict(test.X), fm.predict(test.X))

    def test_newer_fairmodel_version_warns_not_crashes(
        self, fitted, tmp_path
    ):
        fm, test = fitted
        path = tmp_path / "fm.pkl"
        fm.save(path)
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
        envelope["extra"]["fairmodel_format_version"] = 99
        with open(path, "wb") as fh:
            pickle.dump(envelope, fh)
        with pytest.warns(RuntimeWarning, match="loading anyway"):
            loaded = FairModel.load(path)
        assert np.array_equal(loaded.predict(test.X), fm.predict(test.X))
