"""Capture λ-search trajectories into ``tests/goldens/trajectories.json``.

Run once against the pre-refactor loops to freeze the oracle, and again
with ``--check`` after a refactor to prove the ask/tell planner replays
the exact same trajectories::

    PYTHONPATH=src python tests/capture_trajectories.py            # freeze
    PYTHONPATH=src python tests/capture_trajectories.py --check    # verify

The stored record per workload is the selected λ vector plus the full
ordered λ-sequence of the search history — the two things the ISSUE 5
acceptance criteria pin across the planner refactor and across execution
backends.  ``tests/test_planner_equivalence.py`` consumes the same file.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.api import Engine, Problem  # noqa: E402
from repro.datasets import load_scenario  # noqa: E402
from repro.ml import GaussianNaiveBayes  # noqa: E402
from repro.ml.model_selection import train_val_test_split  # noqa: E402

OUT = pathlib.Path(__file__).parent / "goldens" / "trajectories.json"

# strategy × SP/FDR × scenario; multi-constraint workloads run the
# 3-group sweep scenario (3 induced pairwise constraints), single ones
# the two-group label-noise scenario
WORKLOADS = {
    "binary_search-sp-label_noise": (
        "binary_search", "SP <= 0.05", "label_noise", {}),
    "binary_search-fdr-label_noise": (
        "binary_search", "FDR <= 0.05", "label_noise", {}),
    "hill_climb-sp-label_noise": (
        "hill_climb", "SP <= 0.05", "label_noise", {}),
    "hill_climb-fdr-label_noise": (
        "hill_climb", "FDR <= 0.05", "label_noise", {}),
    "hill_climb-sp-group_sweep": (
        "hill_climb", "SP <= 0.08", "group_sweep", {}),
    "hill_climb-fdr-group_sweep": (
        "hill_climb", "FDR <= 0.04", "group_sweep", {}),
    "grid-sp-label_noise": (
        "grid", "SP <= 0.05", "label_noise",
        dict(grid_steps=20, grid_max=0.5)),
    "grid-fdr-label_noise": (
        "grid", "FDR <= 0.05", "label_noise",
        dict(grid_steps=20, grid_max=0.5)),
    "grid-sp-group_sweep": (
        "grid", "SP <= 0.12", "group_sweep",
        dict(grid_steps=5, grid_max=0.2)),
    "linear-sp-label_noise": (
        "linear", "SP <= 0.05", "label_noise", dict(step=0.02)),
    "linear-fdr-label_noise": (
        "linear", "FDR <= 0.05", "label_noise", dict(step=0.02)),
    "cmaes-sp-label_noise": (
        "cmaes", "SP <= 0.05", "label_noise", dict(max_evals=32, seed=0)),
    "cmaes-fdr-label_noise": (
        "cmaes", "FDR <= 0.05", "label_noise", dict(max_evals=32, seed=0)),
    "cmaes-sp-group_sweep": (
        "cmaes", "SP <= 0.10", "group_sweep", dict(max_evals=64, seed=0)),
}


SCENARIO_OVERRIDES = {"group_sweep": dict(n_groups=3)}


def splits_for(scenario):
    data = load_scenario(scenario, n=1600, seed=5,
                         **SCENARIO_OVERRIDES.get(scenario, {}))
    strat = data.sensitive * 2 + data.y
    tr, va, _ = train_val_test_split(len(data), seed=5, stratify=strat)
    return data.subset(tr), data.subset(va)


def lam_seq(history):
    return [np.atleast_1d(np.asarray(h.lam, dtype=np.float64)).tolist()
            for h in history]


def run_workload(name, splits_cache, **engine_kwargs):
    strategy, spec, scenario, options = WORKLOADS[name]
    if scenario not in splits_cache:
        splits_cache[scenario] = splits_for(scenario)
    train, val = splits_cache[scenario]
    fair = Engine(strategy, **options, **engine_kwargs).solve(
        Problem(spec), GaussianNaiveBayes(), train, val
    )
    report = fair.report
    return {
        "strategy": report.strategy,
        "spec": spec,
        "scenario": scenario,
        "lambdas": [float(v) for v in report.lambdas],
        "history_lambdas": lam_seq(report.history),
    }


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--check", action="store_true",
                        help="compare against the stored file instead of "
                             "rewriting it")
    args = parser.parse_args(argv)
    splits_cache = {}
    got = {name: run_workload(name, splits_cache) for name in sorted(WORKLOADS)}
    if args.check:
        want = json.loads(OUT.read_text())
        failures = []
        for name in sorted(WORKLOADS):
            if got[name] != want.get(name):
                failures.append(name)
        if failures:
            print(f"MISMATCH: {failures}")
            return 1
        print(f"OK: {len(got)} trajectories identical")
        return 0
    OUT.parent.mkdir(exist_ok=True)
    OUT.write_text(json.dumps(got, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUT} ({len(got)} workloads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
