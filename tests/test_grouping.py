"""Tests for declarative grouping functions (§4.1)."""

import numpy as np
import pytest

from repro.core.exceptions import SpecificationError
from repro.core.grouping import (
    by_groups,
    by_predicate,
    by_sensitive_attribute,
    intersectional,
    validate_grouping,
)
from repro.datasets import make_biased_dataset


@pytest.fixture(scope="module")
def data():
    return make_biased_dataset(
        "g", 300, ("A", "B", "C"), (0.5, 0.3, 0.2), (0.5, 0.4, 0.3), seed=0
    )


class TestBySensitiveAttribute:
    def test_groups_match_codes(self, data):
        groups = by_sensitive_attribute()(data)
        assert set(groups) == {"A", "B", "C"}
        for code, name in enumerate(("A", "B", "C")):
            assert np.array_equal(
                groups[name], np.nonzero(data.sensitive == code)[0]
            )

    def test_groups_partition_dataset(self, data):
        groups = by_sensitive_attribute()(data)
        combined = np.sort(np.concatenate(list(groups.values())))
        assert np.array_equal(combined, np.arange(len(data)))


class TestByGroups:
    def test_selects_named_pair(self, data):
        groups = by_groups("A", "C")(data)
        assert set(groups) == {"A", "C"}

    def test_unknown_name_raises(self, data):
        with pytest.raises(SpecificationError, match="unknown group"):
            by_groups("A", "Z")(data)

    def test_needs_two_names(self):
        with pytest.raises(SpecificationError, match="at least two"):
            by_groups("A")


class TestIntersectional:
    def test_cross_product_groups(self, data):
        rng = np.random.default_rng(0)
        sex = rng.integers(0, 2, size=len(data))
        grouping = intersectional(
            {"race": lambda d: d.sensitive, "sex": lambda d: sex}
        )
        groups = grouping(data)
        # 3 races x 2 sexes = up to 6 intersections
        assert 4 <= len(groups) <= 6
        assert any("race=0" in k and "sex=1" in k for k in groups)

    def test_group_membership_correct(self, data):
        flags = (np.arange(len(data)) % 2).astype(np.int64)
        grouping = intersectional({"flag": lambda d: flags})
        with pytest.raises(SpecificationError):
            # one attribute with a single value would yield <2 groups only
            # if flags were constant; here it yields exactly 2 -> no raise
            grouping_constant = intersectional(
                {"c": lambda d: np.zeros(len(d))}
            )
            grouping_constant(data)
        groups = grouping(data)
        assert np.array_equal(groups["flag=0"], np.nonzero(flags == 0)[0])


class TestByPredicate:
    def test_overlapping_groups_allowed(self, data):
        grouping = by_predicate(
            all_rows=lambda d: np.ones(len(d), dtype=bool),
            group_a=lambda d: d.sensitive == 0,
        )
        groups = grouping(data)
        assert len(groups["all_rows"]) == len(data)

    def test_bad_mask_shape_raises(self, data):
        grouping = by_predicate(
            a=lambda d: np.ones(3, dtype=bool),
            b=lambda d: np.ones(len(d), dtype=bool),
        )
        with pytest.raises(SpecificationError, match="boolean mask"):
            grouping(data)

    def test_needs_two_predicates(self):
        with pytest.raises(SpecificationError, match="at least two"):
            by_predicate(only=lambda d: d.sensitive == 0)


class TestValidateGrouping:
    def test_empty_group_rejected(self):
        with pytest.raises(SpecificationError, match="empty"):
            validate_grouping({"a": [0], "b": []}, 5)

    def test_out_of_range_rejected(self):
        with pytest.raises(SpecificationError, match="out of range"):
            validate_grouping({"a": [0], "b": [9]}, 5)

    def test_single_group_rejected(self):
        with pytest.raises(SpecificationError, match="at least two"):
            validate_grouping({"a": [0]}, 5)

    def test_2d_indices_rejected(self):
        with pytest.raises(SpecificationError, match="1-D"):
            validate_grouping({"a": [[0]], "b": [1]}, 5)

    def test_names_stringified(self):
        groups = validate_grouping({0: [0], 1: [1]}, 2)
        assert set(groups) == {"0", "1"}
