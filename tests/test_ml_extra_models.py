"""Tests for the extra substrate models (NB, k-NN) and model persistence."""

import numpy as np
import pytest

from repro import FairnessSpec, OmniFair
from repro.ml import (
    GaussianNaiveBayes,
    KNearestNeighbors,
    LogisticRegression,
    ModelFormatError,
    load_model,
    save_model,
)

EXTRA_MODELS = [GaussianNaiveBayes, KNearestNeighbors]


@pytest.mark.parametrize("model_cls", EXTRA_MODELS)
class TestExtraModels:
    def test_learns_separable(self, model_cls, xy_separable):
        X, y = xy_separable
        assert model_cls().fit(X, y).score(X, y) > 0.85

    def test_proba_valid(self, model_cls, xy_noisy):
        X, y = xy_noisy
        proba = model_cls().fit(X, y).predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_weights_shift_predictions(self, model_cls, xy_noisy):
        X, y = xy_noisy
        base = model_cls().fit(X, y).predict(X).mean()
        w = np.where(y == 1, 10.0, 0.1)
        up = model_cls().fit(X, y, sample_weight=w).predict(X).mean()
        assert up > base

    def test_rejects_negative_weights(self, model_cls, xy_noisy):
        X, y = xy_noisy
        w = np.ones(len(y))
        w[0] = -1
        with pytest.raises(ValueError, match="non-negative"):
            model_cls().fit(X, y, sample_weight=w)

    def test_clone_protocol(self, model_cls):
        c = model_cls().clone()
        assert isinstance(c, model_cls)

    def test_works_inside_omnifair(self, model_cls, two_group_splits):
        """The whole point of adding these: more training paradigms that
        OmniFair drives unchanged."""
        train, val, _ = two_group_splits
        of = OmniFair(model_cls(), FairnessSpec("SP", 0.08)).fit(train, val)
        assert of.validation_report_["feasible"]


class TestGaussianNaiveBayes:
    def test_weighted_prior_matches_weights(self, xy_noisy):
        X, y = xy_noisy
        w = np.where(y == 1, 3.0, 1.0)
        nb = GaussianNaiveBayes().fit(X, y, sample_weight=w)
        expected = (3.0 * y.sum()) / (3.0 * y.sum() + (len(y) - y.sum()))
        assert nb.class_prior_[1] == pytest.approx(expected)

    def test_variance_smoothing_keeps_finite(self):
        X = np.zeros((10, 2))  # zero variance features
        y = np.array([0, 1] * 5)
        nb = GaussianNaiveBayes().fit(X, y)
        assert np.all(np.isfinite(nb.predict_proba(X)))

    def test_single_class_degenerates_gracefully(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        y = np.array([0, 1] + [1] * 8)
        w = np.array([0.0] + [1.0] * 9)  # class 0 carries no weight
        nb = GaussianNaiveBayes().fit(X, y, sample_weight=w)
        assert nb.predict(X).min() >= 0


class TestKNN:
    def test_k_larger_than_train_clamped(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        m = KNearestNeighbors(n_neighbors=50).fit(X, y)
        assert m.predict(np.array([[1.5]]))[0] == 1

    def test_zero_weight_rows_cannot_vote(self):
        X = np.array([[0.0], [0.1], [1.0]])
        y = np.array([1, 1, 0])
        w = np.array([0.0, 0.0, 1.0])  # only the y=0 row votes
        m = KNearestNeighbors(n_neighbors=3).fit(X, y, sample_weight=w)
        assert m.predict(np.array([[0.05]]))[0] == 0

    def test_chunked_equals_single_block(self, xy_noisy):
        X, y = xy_noisy
        small = KNearestNeighbors(chunk_size=17).fit(X, y)
        large = KNearestNeighbors(chunk_size=10_000).fit(X, y)
        assert np.allclose(small.predict_proba(X), large.predict_proba(X))


class TestPersistence:
    def test_roundtrip_estimator(self, xy_noisy, tmp_path):
        X, y = xy_noisy
        model = LogisticRegression(max_iter=150).fit(X, y)
        path = tmp_path / "model.pkl"
        save_model(model, path)
        loaded = load_model(path)
        assert np.allclose(loaded.predict_proba(X), model.predict_proba(X))

    def test_roundtrip_omnifair(self, two_group_splits, tmp_path):
        train, val, test = two_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=150), FairnessSpec("SP", 0.05)
        ).fit(train, val)
        path = tmp_path / "fair.pkl"
        save_model(of, path)
        loaded = load_model(path)
        assert np.array_equal(loaded.predict(test.X), of.predict(test.X))

    def test_bad_file_raises(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(ModelFormatError):
            load_model(path)

    def test_wrong_envelope_raises(self, tmp_path):
        import pickle

        path = tmp_path / "dict.pkl"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ModelFormatError, match="bad envelope"):
            load_model(path)

    def test_future_format_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "future.pkl"
        path.write_bytes(
            pickle.dumps(
                {"magic": "repro-model", "format_version": 99, "model": None}
            )
        )
        with pytest.raises(ModelFormatError, match="newer"):
            load_model(path)
