"""Tests for repro.ml.metrics against hand-computed confusion tables."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    average_error_cost,
    confusion_counts,
    error_rate,
    false_discovery_rate,
    false_negative_rate,
    false_omission_rate,
    false_positive_rate,
    misclassification_rate,
    roc_auc_score,
    selection_rate,
    true_positive_rate,
)

# y_true:  1 1 1 0 0 0 1 0
# y_pred:  1 0 1 1 0 0 0 1   -> tp=2 fn=2 fp=2 tn=2
Y_TRUE = np.array([1, 1, 1, 0, 0, 0, 1, 0])
Y_PRED = np.array([1, 0, 1, 1, 0, 0, 0, 1])


class TestConfusionDerived:
    def test_confusion_counts(self):
        assert confusion_counts(Y_TRUE, Y_PRED) == (2, 2, 2, 2)

    def test_accuracy(self):
        assert accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(0.5)

    def test_error_rate_complements_accuracy(self):
        assert error_rate(Y_TRUE, Y_PRED) == pytest.approx(0.5)

    def test_selection_rate(self):
        assert selection_rate(Y_TRUE, Y_PRED) == pytest.approx(4 / 8)

    def test_tpr(self):
        assert true_positive_rate(Y_TRUE, Y_PRED) == pytest.approx(2 / 4)

    def test_fpr(self):
        assert false_positive_rate(Y_TRUE, Y_PRED) == pytest.approx(2 / 4)

    def test_fnr(self):
        assert false_negative_rate(Y_TRUE, Y_PRED) == pytest.approx(2 / 4)

    def test_for(self):
        # P(y=1 | h=0): among 4 predicted negatives, 2 are true positives
        assert false_omission_rate(Y_TRUE, Y_PRED) == pytest.approx(2 / 4)

    def test_fdr(self):
        assert false_discovery_rate(Y_TRUE, Y_PRED) == pytest.approx(2 / 4)

    def test_mr_equals_error_rate(self):
        assert misclassification_rate(Y_TRUE, Y_PRED) == pytest.approx(
            error_rate(Y_TRUE, Y_PRED)
        )

    def test_weighted_accuracy(self):
        w = np.array([1, 1, 1, 1, 0, 0, 0, 0], dtype=float)
        # first four: correct, wrong, correct, wrong -> 0.5
        assert accuracy_score(Y_TRUE, Y_PRED, sample_weight=w) == pytest.approx(0.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            accuracy_score([0, 1], [0])

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            accuracy_score([], [])


class TestDegenerateRates:
    def test_fdr_zero_when_no_positives_predicted(self):
        assert false_discovery_rate([0, 1], [0, 0]) == 0.0

    def test_for_zero_when_no_negatives_predicted(self):
        assert false_omission_rate([0, 1], [1, 1]) == 0.0

    def test_fpr_zero_when_no_negatives_present(self):
        assert false_positive_rate([1, 1], [1, 0]) == 0.0


class TestAverageErrorCost:
    def test_symmetric_costs_match_error_rate(self):
        aec = average_error_cost(Y_TRUE, Y_PRED, cost_fp=1.0, cost_fn=1.0)
        assert aec == pytest.approx(error_rate(Y_TRUE, Y_PRED))

    def test_asymmetric_costs(self):
        aec = average_error_cost(Y_TRUE, Y_PRED, cost_fp=2.0, cost_fn=1.0)
        assert aec == pytest.approx((2.0 * 2 + 1.0 * 2) / 8)

    def test_zero_cost_ignores_errors(self):
        aec = average_error_cost(Y_TRUE, Y_PRED, cost_fp=0.0, cost_fn=0.0)
        assert aec == 0.0


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_reversed_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_ranking_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=2000)
        s = rng.random(2000)
        assert roc_auc_score(y, s) == pytest.approx(0.5, abs=0.05)

    def test_ties_averaged(self):
        # all scores equal: AUC must be exactly 0.5
        assert roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == 0.5

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="single class"):
            roc_auc_score([1, 1], [0.1, 0.2])

    def test_invariant_to_monotone_transform(self):
        y = np.array([0, 1, 0, 1, 1, 0])
        s = np.array([0.1, 0.7, 0.4, 0.9, 0.6, 0.2])
        assert roc_auc_score(y, s) == pytest.approx(
            roc_auc_score(y, np.exp(3 * s))
        )
