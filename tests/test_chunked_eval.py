"""Chunked evaluation path: bit-identical to in-memory, on every workload.

The chunked path streams exact integer count accumulators over row
blocks, so no tolerance is involved anywhere — every assertion in this
file is exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine, Problem
from repro.core.fairness_metrics import METRIC_FACTORIES
from repro.core.kernels import CompiledEvaluator, evaluate_lambda_batch
from repro.core.fitter import WeightedFitter
from repro.core.spec import Constraint, bind_specs
from repro.datasets import available_scenarios, load_scenario
from repro.ml import GaussianNaiveBayes
from repro.ml.model_selection import train_val_test_split

BUILTIN_METRICS = sorted(METRIC_FACTORIES)


def _random_constraints(rng, n, y, k):
    constraints = []
    for i in range(k):
        metric = METRIC_FACTORIES[BUILTIN_METRICS[i % len(BUILTIN_METRICS)]]()
        groups = rng.integers(0, 2, size=n)
        constraints.append(Constraint(
            metric=metric, epsilon=0.05,
            group_names=("a", "b"),
            g1_idx=np.nonzero(groups == 0)[0],
            g2_idx=np.nonzero(groups == 1)[0],
            label=f"c{i}",
        ))
    return constraints


class TestEvaluatorBitIdentity:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(40, 400),
        B=st.integers(1, 6),
        k=st.integers(1, 4),
        chunk=st.integers(1, 500),
    )
    def test_disparities_and_accuracies_match_bitwise(
        self, seed, n, B, k, chunk
    ):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=n)
        if y.min() == y.max():
            y[: n // 2] = 1 - y[0]
        constraints = _random_constraints(rng, n, y, k)
        preds = rng.integers(0, 2, size=(B, n))

        full = CompiledEvaluator(constraints, y)
        chunked = CompiledEvaluator(constraints, y, chunk_size=chunk)
        assert np.array_equal(
            full.disparities_batch(preds), chunked.disparities_batch(preds)
        )
        assert np.array_equal(
            full.accuracies_batch(preds), chunked.accuracies_batch(preds)
        )

    def test_chunk_size_validation(self):
        y = np.array([0, 1, 0, 1])
        c = _random_constraints(np.random.default_rng(0), 4, y, 1)
        with pytest.raises(ValueError, match="chunk_size"):
            CompiledEvaluator(c, y, chunk_size=0)

    def test_streaming_model_scoring_matches_stacked(self):
        rng = np.random.default_rng(5)
        n, d, B = 300, 4, 5
        X = rng.normal(size=(n, d))
        y = (X[:, 0] > 0).astype(np.int64)
        constraints = _random_constraints(rng, n, y, 3)
        models = []
        for b in range(B):
            yb = np.where(rng.random(n) < 0.1, 1 - y, y)
            wb = rng.uniform(0.2, 2.0, size=n)
            models.append(GaussianNaiveBayes().fit(X, yb, sample_weight=wb))
        preds = np.stack([m.predict(X) for m in models])

        full = CompiledEvaluator(constraints, y)
        d_ref, a_ref = full.score_batch(preds)
        for chunk in (1, 7, 64, n, 2 * n):
            ev = CompiledEvaluator(constraints, y, chunk_size=chunk)
            d_got, a_got = ev.score_models_batch(models, X)
            assert np.array_equal(d_ref, d_got), chunk
            assert np.array_equal(a_ref, a_got), chunk

    def test_streaming_and_stacked_share_the_score_cache(self):
        rng = np.random.default_rng(9)
        n = 120
        X = rng.normal(size=(n, 3))
        y = (X[:, 0] > 0).astype(np.int64)
        constraints = _random_constraints(rng, n, y, 1)
        model = GaussianNaiveBayes().fit(X, y)
        ev = CompiledEvaluator(constraints, y, chunk_size=32)
        ev.score_models_batch([model], X)
        assert ev.stats == {"hits": 0, "lookups": 1}
        # the incremental SHA1 equals the stacked-path digest, so an
        # in-memory re-score of the same predictions hits the cache
        ev.score(model.predict(X))
        assert ev.stats == {"hits": 1, "lookups": 2}
        # and a second streaming pass hits it too
        ev.score_models_batch([model], X)
        assert ev.stats == {"hits": 2, "lookups": 3}

    def test_fallback_metric_uses_in_memory_path(self):
        # a custom metric must still be scored identically (full-vector
        # python fallback), chunked or not
        from repro.core.fairness_metrics import custom_metric

        def odd_coeff(y, _pred):
            n1 = max(int(np.sum(y == 1)), 1)
            c = np.zeros(len(y))
            c[y == 1] = 1.0 / n1
            return c, 0.0

        def odd_rate(y_true, y_pred):
            n1 = max(int(np.sum(y_true == 1)), 1)
            return float(np.sum(y_pred[y_true == 1] == y_true[y_true == 1]) / n1)

        metric = custom_metric("ODD", odd_coeff, odd_rate)
        rng = np.random.default_rng(2)
        n = 90
        y = rng.integers(0, 2, size=n)
        groups = rng.integers(0, 2, size=n)
        constraints = [Constraint(
            metric=metric, epsilon=0.1, group_names=("a", "b"),
            g1_idx=np.nonzero(groups == 0)[0],
            g2_idx=np.nonzero(groups == 1)[0],
        )]
        preds = rng.integers(0, 2, size=(3, n))
        full = CompiledEvaluator(constraints, y)
        chunked = CompiledEvaluator(constraints, y, chunk_size=16)
        assert np.array_equal(
            full.disparities_batch(preds), chunked.disparities_batch(preds)
        )


class TestBatchEvalPlumbing:
    def _fitter(self, chunk_size=None):
        rng = np.random.default_rng(0)
        n = 240
        X = rng.normal(size=(n, 3))
        y = (X[:, 0] + 0.4 * rng.normal(size=n) > 0).astype(np.int64)
        groups = rng.integers(0, 2, size=n)
        constraint = Constraint(
            metric=METRIC_FACTORIES["SP"](), epsilon=0.05,
            group_names=("a", "b"),
            g1_idx=np.nonzero(groups == 0)[0],
            g2_idx=np.nonzero(groups == 1)[0],
        )
        fitter = WeightedFitter(
            GaussianNaiveBayes(), X, y, [constraint],
            eval_chunk_size=chunk_size,
        )
        return fitter, constraint, X, y

    def test_eval_chunk_size_validation(self):
        with pytest.raises(ValueError, match="eval_chunk_size"):
            self._fitter(chunk_size=0)

    def test_evaluate_lambda_batch_inherits_fitter_chunk_size(self):
        L = np.linspace(-0.5, 0.5, 7)[:, None]
        ref_fitter, c, X, y = self._fitter(None)
        ref = evaluate_lambda_batch(ref_fitter, [c], X, y, L)
        chunk_fitter, c2, X2, y2 = self._fitter(chunk_size=50)
        got = evaluate_lambda_batch(chunk_fitter, [c2], X2, y2, L)
        assert np.array_equal(ref.disparities, got.disparities)
        assert np.array_equal(ref.accuracies, got.accuracies)

    def test_explicit_chunk_size_overrides(self):
        L = np.array([[0.0], [0.25]])
        fitter, c, X, y = self._fitter(None)
        ref = evaluate_lambda_batch(fitter, [c], X, y, L)
        got = evaluate_lambda_batch(fitter, [c], X, y, L, chunk_size=9)
        assert np.array_equal(ref.disparities, got.disparities)
        assert np.array_equal(ref.accuracies, got.accuracies)


def _splits(data, seed=0):
    strat = data.sensitive * 2 + data.y
    tr, va, te = train_val_test_split(len(data), seed=seed, stratify=strat)
    return data.subset(tr), data.subset(va)


class TestEndToEndWorkloads:
    """Chunked λ-search selects the identical λ on every scenario family
    and on a benchmark twin — the acceptance-criterion check."""

    # per-family ε probed so the grid lands on a feasible nonzero λ
    SCENARIO_EPS = {
        "group_sweep": 0.15,
        "imbalance": 0.05,
        "label_noise": 0.05,
        "covariate_shift": 0.10,
        "million_row": 0.05,
        "hundred_million_row": 0.08,
        "drifting_mix": 0.10,
        "label_drift": 0.10,
    }

    @pytest.mark.parametrize("name", sorted(available_scenarios()))
    def test_scenario_grid_search_identical(self, name):
        overrides = {"n_groups": 2} if name == "group_sweep" else {}
        data = load_scenario(name, n=2000, seed=0, **overrides)
        train, val = _splits(data)
        spec = f"SP <= {self.SCENARIO_EPS[name]}"
        engines = dict(
            full=Engine("grid", grid_steps=10, grid_max=0.5),
            chunked=Engine("grid", grid_steps=10, grid_max=0.5,
                           chunk_size=128),
        )
        reports = {
            kind: engine.solve(
                Problem(spec), GaussianNaiveBayes(), train, val
            ).report
            for kind, engine in engines.items()
        }
        assert reports["full"].lambdas[0] != 0.0
        assert np.array_equal(
            reports["full"].lambdas, reports["chunked"].lambdas
        )
        assert (
            reports["full"].validation["accuracy"]
            == reports["chunked"].validation["accuracy"]
        )
        d_full = [h.disparity for h in reports["full"].history]
        d_chunk = [h.disparity for h in reports["chunked"].history]
        assert d_full == d_chunk

    def test_twin_multi_constraint_grid_identical(self):
        from repro.datasets import load_adult

        data = load_adult(n=2400, seed=0)
        train, val = _splits(data)
        problem = Problem("SP <= 0.12 and FPR <= 0.2")
        full = Engine("grid", grid_steps=5).solve(
            problem, GaussianNaiveBayes(), train, val
        )
        chunked = Engine("grid", grid_steps=5, chunk_size=100).solve(
            problem, GaussianNaiveBayes(), train, val
        )
        assert np.array_equal(full.report.lambdas, chunked.report.lambdas)
        assert np.any(full.report.lambdas != 0.0)

    def test_sequential_strategy_with_chunking_identical(self):
        # binary_search scores one model at a time through the memoized
        # evaluator; chunking must not perturb it either
        data = load_scenario("label_noise", n=2000, seed=1)
        train, val = _splits(data)
        problem = Problem("SP <= 0.05")
        full = Engine("binary_search").solve(
            problem, GaussianNaiveBayes(), train, val
        )
        chunked = Engine("binary_search", chunk_size=64).solve(
            problem, GaussianNaiveBayes(), train, val
        )
        assert np.array_equal(full.report.lambdas, chunked.report.lambdas)

    def test_evaluate_model_and_audit_chunking_identical(self):
        # the final validation/audit pass streams predictions in row
        # blocks when chunking is on — same numbers, bounded peak
        from repro.core.evaluation import evaluate_model

        data = load_scenario("imbalance", n=1500, seed=2)
        constraints = bind_specs(Problem("SP <= 0.05").specs, data)
        model = GaussianNaiveBayes().fit(data.X, data.y)
        full = evaluate_model(model, data.X, data.y, constraints)
        for chunk in (1, 64, 1499, 1500, 4000):
            got = evaluate_model(
                model, data.X, data.y, constraints, chunk_size=chunk
            )
            assert got == full, chunk

        train, val = _splits(data)
        fair = Engine("binary_search").solve(
            Problem("SP <= 0.05"), GaussianNaiveBayes(), train, val
        )
        assert fair.audit(data, chunk_size=97) == fair.audit(data)

    def test_chunked_constraints_bound_via_bind_specs(self):
        # chunking composes with DSL binding (multi-group scenario)
        data = load_scenario("group_sweep", n=2000, seed=0, n_groups=3)
        constraints = bind_specs(Problem("SP <= 0.3").specs, data)
        ev_full = CompiledEvaluator(constraints, data.y)
        ev_chunk = CompiledEvaluator(constraints, data.y, chunk_size=77)
        model = GaussianNaiveBayes().fit(data.X, data.y)
        preds = model.predict(data.X)
        assert np.array_equal(
            ev_full.disparities(preds), ev_chunk.disparities(preds)
        )
