"""Tests for the OmniFair public trainer API."""

import pytest

from repro import FairnessSpec, OmniFair, SpecificationError
from repro.core.grouping import by_groups
from repro.ml import LogisticRegression


class TestConstruction:
    def test_single_spec_wrapped_in_list(self):
        of = OmniFair(LogisticRegression(), FairnessSpec("SP", 0.03))
        assert len(of.specs) == 1

    def test_empty_specs_rejected(self):
        with pytest.raises(SpecificationError, match="at least one"):
            OmniFair(LogisticRegression(), [])

    def test_non_spec_rejected(self):
        with pytest.raises(SpecificationError, match="FairnessSpec"):
            OmniFair(LogisticRegression(), ["SP"])

    def test_unknown_search_rejected(self):
        with pytest.raises(SpecificationError, match="search"):
            OmniFair(
                LogisticRegression(), FairnessSpec("SP", 0.03),
                search="random",
            )


class TestFit:
    def test_explicit_validation_set(self, two_group_splits):
        train, val, test = two_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=200), FairnessSpec("SP", 0.04)
        ).fit(train, val)
        assert of.feasible_
        assert of.validation_report_["feasible"]

    def test_auto_validation_split(self, two_group_data):
        of = OmniFair(
            LogisticRegression(max_iter=200), FairnessSpec("SP", 0.05)
        ).fit(two_group_data)
        assert of.feasible_

    def test_raw_arrays_rejected(self, two_group_data):
        of = OmniFair(LogisticRegression(), FairnessSpec("SP", 0.05))
        with pytest.raises(SpecificationError, match="Dataset"):
            of.fit(two_group_data.X)

    def test_predict_before_fit_raises(self, two_group_data):
        of = OmniFair(LogisticRegression(), FairnessSpec("SP", 0.05))
        with pytest.raises(RuntimeError, match="not fitted"):
            of.predict(two_group_data.X)

    def test_predict_and_proba_shapes(self, two_group_splits):
        train, val, test = two_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=200), FairnessSpec("SP", 0.05)
        ).fit(train, val)
        assert of.predict(test.X).shape == (len(test),)
        assert of.predict_proba(test.X).shape == (len(test), 2)

    def test_evaluate_on_new_dataset(self, two_group_splits):
        train, val, test = two_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=200), FairnessSpec("SP", 0.05)
        ).fit(train, val)
        report = of.evaluate(test)
        assert 0.0 <= report["accuracy"] <= 1.0
        assert len(report["disparities"]) == 1

    def test_disparity_reduced_vs_unconstrained(self, two_group_splits):
        train, val, _ = two_group_splits
        base = LogisticRegression(max_iter=200).fit(train.X, train.y)
        spec = FairnessSpec("SP", 0.03)
        constraint = spec.bind(val)[0]
        base_disp = abs(constraint.disparity(val.y, base.predict(val.X)))
        of = OmniFair(LogisticRegression(max_iter=200), spec).fit(train, val)
        fair_disp = abs(
            list(of.validation_report_["disparities"].values())[0]
        )
        assert fair_disp < base_disp
        assert fair_disp <= 0.03 + 1e-9

    def test_multi_constraint_path(self, three_group_splits):
        train, val, _ = three_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=200), FairnessSpec("SP", 0.06)
        ).fit(train, val)
        assert of.lambdas_.shape == (3,)
        assert of.validation_report_["feasible"]

    def test_grid_search_single(self, two_group_splits):
        train, val, _ = two_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=200), FairnessSpec("SP", 0.05),
            search="grid", grid_max=1.0, grid_steps=10,
        ).fit(train, val)
        assert of.feasible_

    def test_warm_start_path(self, two_group_splits):
        train, val, _ = two_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=200), FairnessSpec("SP", 0.05),
            warm_start=True,
        ).fit(train, val)
        assert of.feasible_

    def test_custom_grouping_subset(self, three_group_splits):
        train, val, _ = three_group_splits
        spec = FairnessSpec("SP", 0.05, grouping=by_groups("A", "B"))
        of = OmniFair(LogisticRegression(max_iter=200), spec).fit(train, val)
        assert of.lambdas_.shape == (1,)

    def test_n_fits_counted(self, two_group_splits):
        train, val, _ = two_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=200), FairnessSpec("SP", 0.05)
        ).fit(train, val)
        assert of.n_fits_ == len(of.history_)
