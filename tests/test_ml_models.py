"""Behavioural tests shared by all substrate classifiers.

Each model must: learn a separable problem well, emit valid probabilities,
respond to sample weights, and be deterministic given its seed.
"""

import numpy as np
import pytest

from repro.ml import (
    DecisionTree,
    GradientBoostedTrees,
    LinearSVM,
    LogisticRegression,
    NeuralNetwork,
    RandomForest,
)

ALL_MODELS = [
    LogisticRegression,
    LinearSVM,
    DecisionTree,
    RandomForest,
    GradientBoostedTrees,
    NeuralNetwork,
]


@pytest.mark.parametrize("model_cls", ALL_MODELS)
class TestAllModels:
    def test_learns_separable(self, model_cls, xy_separable):
        X, y = xy_separable
        model = model_cls().fit(X, y)
        assert model.score(X, y) > 0.85

    def test_proba_shape_and_range(self, model_cls, xy_separable):
        X, y = xy_separable
        proba = model_cls().fit(X, y).predict_proba(X)
        assert proba.shape == (len(y), 2)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_binary(self, model_cls, xy_noisy):
        X, y = xy_noisy
        pred = model_cls().fit(X, y).predict(X)
        assert set(np.unique(pred)) <= {0, 1}

    def test_deterministic_given_seed(self, model_cls, xy_noisy):
        X, y = xy_noisy
        p1 = model_cls(random_state=5).fit(X, y).predict_proba(X)
        p2 = model_cls(random_state=5).fit(X, y).predict_proba(X)
        assert np.allclose(p1, p2)

    def test_sample_weight_shifts_predictions(self, model_cls, xy_noisy):
        X, y = xy_noisy
        base = model_cls().fit(X, y).predict(X).mean()
        w = np.where(y == 1, 10.0, 0.1)
        weighted = model_cls().fit(X, y, sample_weight=w).predict(X).mean()
        assert weighted > base  # up-weighting positives raises selection rate

    def test_uniform_weights_match_unweighted(self, model_cls, xy_noisy):
        X, y = xy_noisy
        a = model_cls(random_state=2).fit(X, y).predict(X)
        b = model_cls(random_state=2).fit(
            X, y, sample_weight=np.ones(len(y))
        ).predict(X)
        # bootstrap-based models resample identically under uniform weights
        assert np.mean(a == b) > 0.95

    def test_rejects_negative_weights(self, model_cls, xy_noisy):
        X, y = xy_noisy
        w = np.ones(len(y))
        w[0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            model_cls().fit(X, y, sample_weight=w)

    def test_single_feature(self, model_cls):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 1))
        y = (X[:, 0] > 0).astype(np.int64)
        assert model_cls().fit(X, y).score(X, y) > 0.9


class TestLogisticRegression:
    def test_decision_function_matches_proba(self, xy_separable):
        X, y = xy_separable
        m = LogisticRegression().fit(X, y)
        df = m.decision_function(X)
        p1 = m.predict_proba(X)[:, 1]
        assert np.all((df > 0) == (p1 > 0.5))

    def test_warm_start_converges_faster(self, xy_noisy):
        X, y = xy_noisy
        cold = LogisticRegression(warm_start=False, max_iter=400)
        cold.fit(X, y)
        first_iters = cold.n_iter_
        warm = LogisticRegression(warm_start=True, max_iter=400)
        warm.fit(X, y)
        warm.fit(X, y)  # second fit starts at the optimum
        assert warm.n_iter_ < first_iters

    def test_l2_shrinks_coefficients(self, xy_separable):
        X, y = xy_separable
        small = LogisticRegression(l2=1e-6).fit(X, y)
        large = LogisticRegression(l2=10.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_warm_start_ignored_on_shape_change(self, xy_noisy):
        X, y = xy_noisy
        m = LogisticRegression(warm_start=True).fit(X, y)
        m.fit(X[:, :3], y)  # fewer features: must reinitialize
        assert m.coef_.shape == (3,)


class TestDecisionTree:
    def test_depth_limit_respected(self, xy_noisy):
        X, y = xy_noisy
        tree = DecisionTree(max_depth=3).fit(X, y)
        assert tree.depth_ <= 3

    def test_depth_zero_is_stump_prior(self, xy_noisy):
        X, y = xy_noisy
        tree = DecisionTree(max_depth=0).fit(X, y)
        assert tree.n_nodes_ == 1
        assert tree.predict_proba(X)[0, 1] == pytest.approx(y.mean())

    def test_pure_node_stops_splitting(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([1, 1, 1, 1])
        tree = DecisionTree(max_depth=5).fit(X, y)
        assert tree.n_nodes_ == 1

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 2))
        y = (X[:, 0] > 0).astype(np.int64)
        tree = DecisionTree(max_depth=10, min_samples_leaf=20).fit(X, y)
        # every leaf must hold >= 20 rows: at most 2 leaves from 50 rows
        leaves = np.sum(tree.feature_ == -1)
        assert leaves <= 2

    def test_zero_weight_rows_ignored(self):
        # rows with weight 0 carry a contradictory label; they must not
        # influence the fitted tree
        X = np.array([[0.0], [0.1], [1.0], [1.1], [0.05], [1.05]])
        y = np.array([0, 0, 1, 1, 1, 0])
        w = np.array([1.0, 1.0, 1.0, 1.0, 0.0, 0.0])
        tree = DecisionTree(max_depth=3).fit(X, y, sample_weight=w)
        assert tree.predict(np.array([[0.05]]))[0] == 0
        assert tree.predict(np.array([[1.05]]))[0] == 1

    def test_all_zero_weights_raise(self):
        with pytest.raises(ValueError, match="zero"):
            DecisionTree().fit(
                np.zeros((3, 1)), np.array([0, 1, 0]), np.zeros(3)
            )

    def test_constant_features_yield_stump(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTree().fit(X, y)
        assert tree.n_nodes_ == 1


class TestRandomForest:
    def test_more_trees_smoother_probabilities(self, xy_noisy):
        X, y = xy_noisy
        few = RandomForest(n_estimators=2, random_state=0).fit(X, y)
        many = RandomForest(n_estimators=40, random_state=0).fit(X, y)
        assert len(np.unique(many.predict_proba(X)[:, 1])) >= len(
            np.unique(few.predict_proba(X)[:, 1])
        )

    def test_no_bootstrap_mode(self, xy_separable):
        X, y = xy_separable
        m = RandomForest(n_estimators=5, bootstrap=False).fit(X, y)
        assert m.score(X, y) > 0.85

    def test_max_features_sqrt_resolution(self):
        m = RandomForest(max_features="sqrt")
        assert m._resolve_max_features(16) == 4
        assert m._resolve_max_features(1) == 1


class TestGradientBoostedTrees:
    def test_boosting_improves_on_stump(self, xy_noisy):
        X, y = xy_noisy
        one = GradientBoostedTrees(n_estimators=1, max_depth=1).fit(X, y)
        many = GradientBoostedTrees(n_estimators=40, max_depth=3).fit(X, y)
        assert many.score(X, y) > one.score(X, y)

    def test_base_score_is_weighted_log_odds(self):
        X = np.random.default_rng(0).normal(size=(100, 2))
        y = np.array([1] * 80 + [0] * 20)
        m = GradientBoostedTrees(n_estimators=1).fit(X, y)
        assert m.base_score_ == pytest.approx(np.log(0.8 / 0.2), abs=1e-6)

    def test_learning_rate_scales_updates(self, xy_noisy):
        X, y = xy_noisy
        slow = GradientBoostedTrees(n_estimators=3, learning_rate=0.01).fit(X, y)
        raw = slow.decision_function(X)
        # tiny learning rate keeps scores near the base score
        assert np.all(np.abs(raw - slow.base_score_) < 0.5)


class TestNeuralNetwork:
    def test_learns_xor(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)
        m = NeuralNetwork(hidden_units=16, max_iter=600, learning_rate=0.3)
        assert m.fit(X, y).score(X, y) > 0.9  # linear models cannot do this

    def test_warm_start_reuses_params(self, xy_noisy):
        X, y = xy_noisy
        m = NeuralNetwork(warm_start=True, max_iter=50)
        m.fit(X, y)
        w_before = m._params["W1"].copy()
        m.fit(X, y)
        # warm start continues from previous weights, not reinitialized
        assert not np.allclose(m._params["W1"], w_before) or m.max_iter == 0
