"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_train_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--dataset", "compas"])
        assert args.metric == "SP"
        assert args.epsilon == 0.03
        assert args.model == "LR"

    def test_invalid_metric_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--dataset", "compas", "--metric", "WRONG"]
            )

    def test_spec_flag_repeatable(self):
        args = build_parser().parse_args(
            ["train", "--dataset", "compas",
             "--spec", "SP <= 0.03", "--spec", "FNR <= 0.05"]
        )
        assert args.spec == ["SP <= 0.03", "FNR <= 0.05"]

    def test_search_flag_validated(self):
        args = build_parser().parse_args(
            ["train", "--dataset", "compas", "--search", "grid"]
        )
        assert args.search == "grid"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--dataset", "compas", "--search", "nope"]
            )

    def test_strategy_opt_parsing(self):
        args = build_parser().parse_args(
            ["train", "--dataset", "compas",
             "--strategy-opt", "tau=1e-4",
             "--strategy-opt", "grid_steps=9",
             "--strategy-opt", "name=abc"]
        )
        assert dict(args.strategy_opt) == {
            "tau": 1e-4, "grid_steps": 9, "name": "abc",
        }

    def test_strategy_opt_requires_key_value(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--dataset", "compas", "--strategy-opt", "tau"]
            )


class TestCommands:
    def test_list_output(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        assert "compas" in text and "SP" in text and "XGB" in text

    def test_list_shows_registered_strategies(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        assert "strategies:" in text
        for name in ("binary_search", "hill_climb", "grid", "linear",
                     "cmaes"):
            assert name in text

    def test_train_end_to_end(self):
        out = io.StringIO()
        code = main(
            [
                "train", "--dataset", "compas", "--two-group",
                "--rows", "1200", "--epsilon", "0.05",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "test accuracy:" in text
        assert "lambda" in text

    def test_train_saves_model(self, tmp_path):
        from repro.ml import load_model

        out = io.StringIO()
        path = tmp_path / "model.pkl"
        code = main(
            [
                "train", "--dataset", "lsac", "--rows", "1200",
                "--epsilon", "0.08", "--save", str(path),
            ],
            out=out,
        )
        assert code == 0
        loaded = load_model(path)
        assert hasattr(loaded, "predict")

    def test_train_with_dsl_spec(self):
        out = io.StringIO()
        code = main(
            [
                "train", "--dataset", "compas", "--two-group",
                "--rows", "1200", "--spec", "SP(race) <= 0.05",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert 'spec="SP(race) <= 0.05"' in text
        assert "strategy=binary_search" in text

    def test_train_with_search_and_strategy_opt(self):
        out = io.StringIO()
        code = main(
            [
                "train", "--dataset", "compas", "--two-group",
                "--rows", "1200", "--epsilon", "0.08",
                "--search", "grid", "--strategy-opt", "grid_steps=10",
            ],
            out=out,
        )
        assert code == 0
        assert "strategy=grid" in out.getvalue()

    def test_train_unknown_strategy_opt_fails_cleanly(self):
        out = io.StringIO()
        code = main(
            [
                "train", "--dataset", "compas", "--two-group",
                "--rows", "1200", "--search", "grid",
                "--strategy-opt", "typo=1",
            ],
            out=out,
        )
        assert code == 2
        assert "SPEC ERROR" in out.getvalue()

    def test_train_reserved_strategy_opt_fails_cleanly(self):
        out = io.StringIO()
        code = main(
            [
                "train", "--dataset", "compas", "--two-group",
                "--rows", "1200", "--strategy-opt", "subsample=0.5",
            ],
            out=out,
        )
        assert code == 2
        assert "SPEC ERROR" in out.getvalue()
        assert "--subsample" not in out.getvalue().split("SPEC ERROR")[0]

    def test_train_bad_spec_fails_cleanly(self):
        out = io.StringIO()
        code = main(
            [
                "train", "--dataset", "compas", "--two-group",
                "--rows", "1200", "--spec", "NOPE <= 0.05",
            ],
            out=out,
        )
        assert code == 2
        assert "SPEC ERROR" in out.getvalue()

    def test_train_infeasible_exit_code(self):
        out = io.StringIO()
        code = main(
            [
                "train", "--dataset", "compas", "--two-group",
                "--rows", "1000", "--metric", "MR", "--epsilon", "0.0",
            ],
            out=out,
        )
        # exact-zero MR parity is (practically) unreachable -> infeasible
        # reporting path; if a degenerate split makes it reachable the run
        # legitimately succeeds
        assert code in (0, 1)
        if code == 1:
            assert "INFEASIBLE" in out.getvalue()


class TestScenarioAndExternalModelCommands:
    """CLI surface added with the scenario/adapter layer (ISSUE 4)."""

    def test_list_shows_scenarios_and_ext_hint(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        assert "scenario:imbalance" in text
        assert "ext:<module:Class>" in text

    def test_train_on_scenario_with_ext_model_and_chunking(self):
        out = io.StringIO()
        code = main(
            [
                "train", "--dataset", "scenario:label_noise",
                "--rows", "1500", "--spec", "SP <= 0.05",
                "--model", "ext:repro.ml:GaussianNaiveBayes",
                "--chunk-size", "256",
            ],
            out=out,
        )
        assert code == 0
        assert "test accuracy:" in out.getvalue()

    def test_unknown_scenario_fails_cleanly(self):
        out = io.StringIO()
        code = main(
            ["train", "--dataset", "scenario:nope", "--rows", "500"],
            out=out,
        )
        assert code == 2
        assert "SPEC ERROR" in out.getvalue()

    def test_unknown_model_name_fails_cleanly(self):
        out = io.StringIO()
        code = main(
            ["train", "--dataset", "compas", "--rows", "800",
             "--model", "NOTAMODEL"],
            out=out,
        )
        assert code == 2
        assert "MODEL ERROR" in out.getvalue()

    def test_unparseable_ext_path_fails_cleanly(self):
        # regression: the ValueError from a one-word ext: path used to
        # escape the except tuple as a traceback
        out = io.StringIO()
        code = main(
            ["train", "--dataset", "compas", "--rows", "800",
             "--model", "ext:justoneword"],
            out=out,
        )
        assert code == 2
        assert "MODEL ERROR" in out.getvalue()

    def test_unimportable_ext_module_fails_cleanly(self):
        out = io.StringIO()
        code = main(
            ["train", "--dataset", "compas", "--rows", "800",
             "--model", "ext:definitely_not_a_module:X"],
            out=out,
        )
        assert code == 2
        assert "MODEL ERROR" in out.getvalue()

    def test_two_group_on_scenario_fails_cleanly(self):
        # regression: two_group_view's COMPAS-specific group names used
        # to raise an uncaught ValueError on scenario datasets
        out = io.StringIO()
        code = main(
            ["train", "--dataset", "scenario:group_sweep",
             "--rows", "800", "--two-group"],
            out=out,
        )
        assert code == 2
        assert "SPEC ERROR" in out.getvalue()

    def test_bad_chunk_size_fails_cleanly(self):
        out = io.StringIO()
        code = main(
            ["train", "--dataset", "compas", "--two-group",
             "--rows", "800", "--chunk-size", "0"],
            out=out,
        )
        assert code == 2
        assert "chunk_size" in out.getvalue()


class TestEncodeAndColumnarCommands:
    def _encode(self, tmp_path, rows="4000"):
        out = io.StringIO()
        code = main(
            ["encode", "--dataset", "scenario:million_row",
             "--out", str(tmp_path), "--rows", rows],
            out=out,
        )
        assert code == 0, out.getvalue()
        return out.getvalue()

    def test_list_shows_storage_backends(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        assert "storage:" in text
        assert "columnar" in text and "repro encode" in text

    def test_encode_reports_manifest(self, tmp_path):
        text = self._encode(tmp_path, rows="2000")
        assert "encoded scenario:million_row" in text
        assert "rows: 2000" in text
        assert "fingerprint: " in text
        assert "sidecars: " in text

    def test_encode_unknown_dataset_fails_cleanly(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["encode", "--dataset", "scenario:nope",
             "--out", str(tmp_path)],
            out=out,
        )
        assert code == 2
        assert "SPEC ERROR" in out.getvalue()

    def test_encode_solve_resolve_hits_cache(self, tmp_path):
        """The acceptance loop: encode once, solve, re-solve for free.

        The second run must replay the identical solution from the
        cross-run cache — ``model fits: 0`` — because the columnar
        fingerprint equals the in-memory one and the cache key excludes
        the storage backend.
        """
        self._encode(tmp_path / "store")
        cache = tmp_path / "cache"
        argv = [
            "train", "--dataset", "scenario:million_row@columnar",
            "--columnar-dir", str(tmp_path / "store"),
            "--search", "grid",
            "--strategy-opt", "grid_steps=8",
            "--strategy-opt", "grid_max=0.5",
            "--epsilon", "0.05",
            "--store-dir", str(cache),
        ]
        first = io.StringIO()
        assert main(argv, out=first) == 0, first.getvalue()
        assert "test accuracy:" in first.getvalue()
        second = io.StringIO()
        assert main(argv, out=second) == 0, second.getvalue()
        assert "model fits: 0" in second.getvalue()
        # identical lambda both runs (the fit count on the same line
        # legitimately differs: 18 cold, 0 replayed)
        def lam(text):
            line = next(l for l in text.splitlines() if "lambda" in l)
            return line.split("model fits:")[0]

        assert lam(first.getvalue()) == lam(second.getvalue())

    def test_columnar_suffix_without_dir_fails_cleanly(self):
        out = io.StringIO()
        code = main(
            ["train", "--dataset", "scenario:million_row@columnar"],
            out=out,
        )
        assert code == 2
        assert "columnar" in out.getvalue()

    def test_columnar_store_name_mismatch_fails_cleanly(self, tmp_path):
        self._encode(tmp_path, rows="1000")
        out = io.StringIO()
        code = main(
            ["train", "--dataset", "scenario:imbalance@columnar",
             "--columnar-dir", str(tmp_path)],
            out=out,
        )
        assert code == 2
        assert "holds" in out.getvalue()

    def test_corrupt_store_fails_cleanly(self, tmp_path):
        import warnings

        self._encode(tmp_path, rows="1000")
        (tmp_path / "manifest.json").write_text("{broken")
        out = io.StringIO()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            code = main(
                ["train", "--dataset", "scenario:million_row@columnar",
                 "--columnar-dir", str(tmp_path)],
                out=out,
            )
        assert code == 2
        assert "SPEC ERROR" in out.getvalue()
