"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_train_requires_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--dataset", "compas"])
        assert args.metric == "SP"
        assert args.epsilon == 0.03
        assert args.model == "LR"

    def test_invalid_metric_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--dataset", "compas", "--metric", "WRONG"]
            )


class TestCommands:
    def test_list_output(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        assert "compas" in text and "SP" in text and "XGB" in text

    def test_train_end_to_end(self):
        out = io.StringIO()
        code = main(
            [
                "train", "--dataset", "compas", "--two-group",
                "--rows", "1200", "--epsilon", "0.05",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "test accuracy:" in text
        assert "lambda" in text

    def test_train_saves_model(self, tmp_path):
        from repro.ml import load_model

        out = io.StringIO()
        path = tmp_path / "model.pkl"
        code = main(
            [
                "train", "--dataset", "lsac", "--rows", "1200",
                "--epsilon", "0.08", "--save", str(path),
            ],
            out=out,
        )
        assert code == 0
        loaded = load_model(path)
        assert hasattr(loaded, "predict")

    def test_train_infeasible_exit_code(self):
        out = io.StringIO()
        code = main(
            [
                "train", "--dataset", "compas", "--two-group",
                "--rows", "1000", "--metric", "MR", "--epsilon", "0.0",
            ],
            out=out,
        )
        # exact-zero MR parity is (practically) unreachable -> infeasible
        # reporting path; if a degenerate split makes it reachable the run
        # legitimately succeeds
        assert code in (0, 1)
        if code == 1:
            assert "INFEASIBLE" in out.getvalue()
