"""Serving tier: the HTTP service end to end (client → service → model).

A real server thread on a real socket: predictions through the
micro-batcher must be bit-identical to direct ``FairModel.predict``
under a multi-threaded client hammer, retune jobs must dedup through
the registry on canonically-equivalent specs, and every error path must
come back as a clean status code instead of a dead connection.
"""

import threading

import numpy as np
import pytest

from repro.api import Engine, Problem
from repro.datasets import load_scenario
from repro.ml import GaussianNaiveBayes
from repro.serving import (
    FairnessService,
    ModelRegistry,
    ServingClient,
    ServingError,
    serve_in_thread,
)

SCENARIO_N = 1200
SCENARIO_SEED = 5


@pytest.fixture(scope="module")
def dataset():
    return load_scenario("group_sweep", n=SCENARIO_N, seed=SCENARIO_SEED)


@pytest.fixture(scope="module")
def fair_model(dataset):
    engine = Engine("auto")
    return engine.solve(
        Problem("SP <= 0.08"), GaussianNaiveBayes(), dataset,
        seed=SCENARIO_SEED,
    )


@pytest.fixture()
def server(dataset, fair_model):
    registry = ModelRegistry()
    registry.register(
        "gs", fair_model, dataset_fingerprint=dataset.fingerprint(),
    )
    service = FairnessService(
        registry=registry, batching=True, max_batch_size=16, max_wait_us=500,
    )
    with serve_in_thread(service) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServingClient(server.host, server.port) as c:
        yield c


class TestBasics:
    def test_healthz_and_models(self, client):
        health = client.healthz()
        assert health["ok"] is True and health["models"] == 1
        (row,) = client.models()
        assert row["name"] == "gs"
        assert row["estimator"] == "GaussianNaiveBayes"
        assert row["spec"] == "SP <= 0.08"

    def test_predict_matches_direct_model(self, client, dataset, fair_model):
        rows = dataset.X[:17]
        got = client.predict("gs", rows)
        assert np.array_equal(got, fair_model.predict(rows))

    def test_audit_on_named_dataset(self, client, fair_model):
        out = client.audit(
            "gs", dataset="scenario:group_sweep", n=400, seed=2,
        )
        direct = fair_model.audit(
            load_scenario("group_sweep", n=400, seed=2)
        )
        assert out["audit"]["accuracy"] == pytest.approx(direct["accuracy"])
        assert out["n_rows"] == 400

    def test_audit_on_inline_data(self, client, dataset, fair_model):
        sub = dataset.subset(np.arange(60))
        out = client.audit("gs", data={
            "X": sub.X.tolist(),
            "y": sub.y.tolist(),
            "sensitive": sub.sensitive.tolist(),
        })
        assert out["audit"]["accuracy"] == pytest.approx(
            fair_model.audit(sub)["accuracy"]
        )

    def test_stats_shape(self, client, dataset):
        client.predict("gs", dataset.X[:3])
        stats = client.stats()
        assert stats["batching"]["enabled"] is True
        assert "gs" in stats["batching"]["per_model"]
        assert stats["registry"]["models"] == 1
        assert stats["admission"]["admitted"] >= 1
        assert "queue_depth" in stats
        assert stats["store"] is None  # no --store-dir on this server

    def test_stats_reports_store_counters(self, tmp_path):
        service = FairnessService(store_dir=tmp_path)
        stats = service._stats()
        assert stats["store"]["hits"] == 0
        assert stats["store"]["max_bytes"] is None

    def test_keep_alive_connection_reuse(self, client, dataset):
        for _ in range(4):
            client.healthz()
        client.predict("gs", dataset.X[:2])


class TestErrorPaths:
    def test_unknown_model_is_404(self, client, dataset):
        with pytest.raises(ServingError) as excinfo:
            client.predict("ghost", dataset.X[:2])
        assert excinfo.value.status == 404

    def test_empty_rows_is_400(self, client):
        with pytest.raises(ServingError) as excinfo:
            client._request("POST", "/predict", {"model": "gs", "rows": []})
        assert excinfo.value.status == 400

    def test_ragged_rows_is_400(self, client):
        with pytest.raises(ServingError) as excinfo:
            client._request(
                "POST", "/predict",
                {"model": "gs", "rows": [[1.0, 2.0], [1.0]]},
            )
        assert excinfo.value.status == 400

    def test_empty_inline_audit_is_400(self, client):
        # the Engine/audit empty-dataset guard surfaces as a clean 400
        with pytest.raises(ServingError) as excinfo:
            client.audit("gs", data={"X": [], "y": [], "sensitive": []})
        assert excinfo.value.status == 400
        assert "zero rows" in str(excinfo.value)

    def test_bad_json_is_400(self, client):
        conn = client._connection()
        conn.request(
            "POST", "/predict", body=b"{not json",
            headers={"Content-Type": "application/json",
                     "Content-Length": "9"},
        )
        response = conn.getresponse()
        response.read()
        assert response.status == 400

    def test_unknown_route_is_404_and_bad_method_is_405(self, client):
        with pytest.raises(ServingError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServingError) as excinfo:
            client._request("GET", "/predict")
        assert excinfo.value.status == 405

    def test_bad_retune_spec_is_400(self, client):
        with pytest.raises(ServingError) as excinfo:
            client.retune("SP <= banana", "scenario:group_sweep")
        assert excinfo.value.status == 400

    def test_unknown_retune_estimator_is_400(self, client):
        with pytest.raises(ServingError) as excinfo:
            client.retune("SP <= 0.1", "scenario:group_sweep",
                          estimator="NOPE")
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServingError) as excinfo:
            client.job("999999")
        assert excinfo.value.status == 404


class TestRetune:
    def test_retune_job_then_canonical_dedup(self, client):
        job = client.retune(
            "FNR <= 0.15 and SP <= 0.10", "scenario:group_sweep",
            name="tuned", n=900, seed=4, estimator="NB",
        )
        status = client.wait_job(job["job_id"])
        assert status["status"] == "done"
        result = status["result"]
        assert result["registry_hit"] is False and result["solves"] == 1
        assert "tuned" in {row["name"] for row in client.models()}

        # canonically equivalent: clauses reordered, epsilons reformatted
        job2 = client.retune(
            "sp <= 1e-1 and FNR<=0.15", "scenario:group_sweep",
            n=900, seed=4, estimator="NB",
        )
        status2 = client.wait_job(job2["job_id"])
        assert status2["status"] == "done"
        result2 = status2["result"]
        assert result2["registry_hit"] is True
        assert result2["model"] == "tuned" and result2["solves"] == 0

        stats = client.stats()
        assert stats["admission"]["solves"] == 1
        assert stats["admission"]["retune_registry_hits"] == 1
        assert stats["registry"]["canonical_hits"] >= 1

        # the deduped model serves predictions immediately
        probe = load_scenario("group_sweep", n=900, seed=4)
        preds = client.predict("tuned", probe.X[:9])
        assert preds.shape == (9,)

    def test_retune_on_different_data_does_not_dedup(self, client):
        job = client.retune(
            "SP <= 0.07", "scenario:group_sweep", name="a", n=700, seed=1,
        )
        assert client.wait_job(job["job_id"])["result"]["registry_hit"] is False
        job2 = client.retune(
            "SP <= 0.07", "scenario:group_sweep", n=700, seed=2,
        )
        result = client.wait_job(job2["job_id"])["result"]
        assert result["registry_hit"] is False  # different fingerprint


class TestUpdate:
    """POST /update: the incremental engine's front door."""

    BASE = {"dataset": "scenario:group_sweep", "n": 400, "seed": 7}

    def _direct_auditor(self, fair_model):
        from repro.incremental import IncrementalAuditor
        base = load_scenario("group_sweep", n=400, seed=7)
        return IncrementalAuditor(fair_model.specs, fair_model, base)

    def test_seed_append_retire_matches_direct_auditor(
        self, client, fair_model,
    ):
        direct = self._direct_auditor(fair_model)
        seeded = client.update("gs", base=self.BASE, tolerance=10.0)
        assert seeded["ops"] == [] and seeded["rows"] == 0
        assert seeded["audit"]["n_live"] == 400
        assert seeded["audit"]["fingerprint"] == direct.fingerprint
        assert seeded["retune"] == {"triggered": False}

        batch = load_scenario("group_sweep", n=60, seed=11)
        out = client.update("gs", append={
            "X": batch.X, "y": batch.y, "sensitive": batch.sensitive,
        }, retire=[0, 5, 9])
        direct.append_rows(batch)
        snapshot = direct.retire_rows(np.array([0, 5, 9]))
        assert out["ops"] == ["append", "retire"] and out["rows"] == 63
        # JSON round-trips float64 exactly (shortest-repr), so the
        # served audit must equal the in-process auditor to the bit
        assert out["audit"]["disparities"] == [
            float(d) for d in snapshot["disparities"]
        ]
        assert out["audit"]["accuracy"] == float(snapshot["accuracy"])
        assert out["audit"]["max_violation"] == float(
            snapshot["max_violation"]
        )
        assert out["audit"]["n_live"] == 457
        assert out["audit"]["fingerprint"] == direct.fingerprint

        stats = client.stats()
        assert stats["admission"]["updates"] == 2
        assert stats["admission"]["update_rows"] == 63
        inc = stats["incremental"]["gs"]
        assert inc["n_live"] == 457 and inc["n_updates"] == 2
        assert inc["fingerprint"] == direct.fingerprint
        assert inc["tolerance"] == 10.0

    def test_first_update_without_base_is_400(self, client):
        with pytest.raises(ServingError, match="must carry 'base'") as e:
            client.update("gs", retire=[0])
        assert e.value.status == 400

    def test_reseed_with_base_is_400(self, client):
        client.update("gs", base=self.BASE, tolerance=10.0)
        with pytest.raises(ServingError, match="already seeded") as e:
            client.update("gs", base=self.BASE)
        assert e.value.status == 400

    def test_update_unknown_model_is_404(self, client):
        with pytest.raises(ServingError) as e:
            client.update("ghost", base=self.BASE)
        assert e.value.status == 404

    def test_bad_tolerance_is_400(self, client):
        # the typed client coerces tolerance; hit the route raw to pin
        # the server-side validation
        with pytest.raises(ServingError, match="tolerance") as e:
            client._request("POST", "/update", {
                "model": "gs", "base": self.BASE, "tolerance": "tight",
            })
        assert e.value.status == 400

    def test_unknown_append_group_is_400(self, client):
        client.update("gs", base=self.BASE, tolerance=10.0)
        with pytest.raises(ServingError, match="exceed group_names") as e:
            client.update("gs", append={
                "X": [[0.0] * 8], "y": [0], "sensitive": [9],
            })
        assert e.value.status == 400

    def test_drift_breach_triggers_warm_retune_job(self, client):
        # tolerance below any possible max-violation forces the breach
        out = client.update("gs", base=self.BASE, tolerance=-10.0)
        retune = out["retune"]
        assert retune["triggered"] is True
        assert retune["tolerance"] == -10.0
        status = client.wait_job(retune["job_id"])
        result = status["result"]
        assert result["warm"] is True and result["model"] == "gs"
        assert result["dataset_fingerprint"] == out["audit"]["fingerprint"]
        (row,) = client.models()
        assert row["name"] == "gs"
        stats = client.stats()
        assert stats["admission"]["drift_retunes"] == 1
        # the refit model serves predictions immediately
        probe = load_scenario("group_sweep", n=20, seed=3)
        assert client.predict("gs", probe.X).shape == (20,)

    def test_retune_false_reports_disabled(self, client):
        out = client.update(
            "gs", base=self.BASE, tolerance=-10.0, retune=False,
        )
        assert out["retune"]["triggered"] is False
        assert out["retune"]["reason"] == "disabled"
        assert client.stats()["admission"]["drift_retunes"] == 0


class TestConcurrentClients:
    N_CLIENTS = 6
    REQUESTS = 12

    def test_hammer_bit_identical_predictions(
        self, server, dataset, fair_model,
    ):
        expected = fair_model.predict(dataset.X)
        failures = []
        barrier = threading.Barrier(self.N_CLIENTS)

        def worker(worker_id):
            rng = np.random.default_rng(worker_id)
            try:
                with ServingClient(server.host, server.port) as c:
                    barrier.wait()
                    for _ in range(self.REQUESTS):
                        start = int(rng.integers(0, len(dataset.X) - 6))
                        got = c.predict("gs", dataset.X[start:start + 6])
                        if not np.array_equal(
                            got, expected[start:start + 6]
                        ):
                            failures.append((worker_id, start))
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                failures.append((worker_id, exc))

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []

        with ServingClient(server.host, server.port) as c:
            stats = c.stats()
        batcher = stats["batching"]["per_model"]["gs"]
        assert batcher["requests"] == self.N_CLIENTS * self.REQUESTS
        sizes = {int(s) for s in batcher["histogram"]}
        assert max(sizes) <= 16


class TestBatchingDisabled:
    def test_unbatched_service_still_bit_identical(self, dataset, fair_model):
        registry = ModelRegistry()
        registry.register("gs", fair_model)
        service = FairnessService(registry=registry, batching=False)
        with serve_in_thread(service) as handle:
            with ServingClient(handle.host, handle.port) as c:
                rows = dataset.X[:11]
                assert np.array_equal(
                    c.predict("gs", rows), fair_model.predict(rows)
                )
                stats = c.stats()
                assert stats["batching"]["enabled"] is False
                assert stats["batching"]["max_batch_size"] == 1
                histogram = (
                    stats["batching"]["per_model"]["gs"]["histogram"]
                )
                assert histogram == {"1": 1}
