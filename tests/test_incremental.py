"""Incremental engine: exact fairness maintenance under data updates.

The load-bearing property: after ANY sequence of append/retire batches,
the :class:`IncrementalAuditor`'s disparities, accuracy, and
max-violation are **bit-identical** to a from-scratch
:class:`CompiledEvaluator` pass over the live rows — across SP (plain
counts), FOR/FDR (model-parameterized denominators), multi-spec
constraint sets, and overlapping predicate groups.  Hypothesis drives
randomized update sequences; the unit tests pin the error paths, the
delta-chained fingerprint, and the warm drift-retune plumbing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine
from repro.core.evaluation import max_violation as reference_max_violation
from repro.core.exceptions import SpecificationError
from repro.core.fairness_metrics import FairnessMetric
from repro.core.grouping import by_attributes, by_predicate
from repro.core.spec import FairnessSpec, bind_specs
from repro.datasets import load
from repro.datasets.schema import Dataset
from repro.incremental import (
    DriftPolicy,
    IncrementalAuditor,
    warm_options,
    warm_retune,
)
from repro.store.delta import append_digest, chain_fingerprint, retire_digest


class ThresholdModel:
    """Deterministic stub predictor: sign of the first feature."""

    def predict(self, X):
        return (np.asarray(X)[:, 0] > 0).astype(np.int64)


def make_dataset(rng, n, name="synth", extras=None):
    X = rng.normal(size=(n, 3))
    y = rng.integers(0, 2, size=n).astype(np.int64)
    sensitive = rng.integers(0, 2, size=n).astype(np.int64)
    # guarantee both groups and both labels exist
    sensitive[:2] = [0, 1]
    y[:2] = [0, 1]
    return Dataset(
        name=name, X=X, y=y, sensitive=sensitive, group_names=("A", "B"),
        extras=dict(extras or {}),
    )


def assert_snapshot_matches(snapshot, reference):
    assert snapshot["constraint_labels"] == reference["constraint_labels"]
    assert (
        snapshot["disparities"].tobytes()
        == reference["disparities"].tobytes()
    )
    assert snapshot["accuracy"] == reference["accuracy"]
    assert snapshot["max_violation"] == reference["max_violation"]


def retire_is_safe(auditor, pick):
    """True when retiring ``pick`` leaves every group non-empty."""
    alive = auditor._col("alive").copy()
    alive[pick] = False
    for s in range(len(auditor.specs)):
        member = auditor._col(f"member{s}")
        if (member & alive[:, None]).sum(axis=0).min() == 0:
            return False
    return True


def drive_random_updates(auditor, pool, rng, n_ops):
    """Random append/retire sequence, verifying bit-identity each step."""
    cursor = 0
    for _ in range(n_ops):
        if rng.random() < 0.4 and auditor.n_live > 40:
            live = np.nonzero(auditor._col("alive"))[0]
            pick = rng.choice(
                live, size=int(rng.integers(1, 10)), replace=False,
            )
            if not retire_is_safe(auditor, pick):
                continue
            snapshot = auditor.retire_rows(pick)
        else:
            take = int(rng.integers(1, 30))
            idx = np.arange(cursor, cursor + take) % len(pool)
            cursor += take
            snapshot = auditor.append_rows(pool.subset(idx))
        assert_snapshot_matches(snapshot, auditor.recompute())


# ---------------------------------------------------------------------------
# the bit-identity property
# ---------------------------------------------------------------------------


class TestBitIdentityProperty:
    @given(st.integers(0, 10_000), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_sp_for_fdr_random_sequences(self, seed, n_ops):
        """SP + FOR + FDR multi-spec set under random update sequences."""
        rng = np.random.default_rng(seed)
        base = make_dataset(rng, 80 + int(rng.integers(0, 60)))
        specs = [
            FairnessSpec("SP", 0.05),
            FairnessSpec("FOR", 0.1),
            FairnessSpec("FDR", 0.1),
        ]
        auditor = IncrementalAuditor(specs, ThresholdModel(), base)
        assert_snapshot_matches(auditor.audit(), auditor.recompute())
        drive_random_updates(auditor, make_dataset(rng, 400), rng, n_ops)

    @given(st.integers(0, 10_000), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_overlapping_predicate_groups(self, seed, n_ops):
        """Groups may overlap (§4.3): rows counted in both sides."""
        rng = np.random.default_rng(seed)
        grouping = by_predicate(
            lo=lambda d: d.X[:, 1] < 0.5,
            hi=lambda d: d.X[:, 1] > -0.5,  # deliberate overlap band
        )
        specs = [
            FairnessSpec("SP", 0.05, grouping=grouping),
            FairnessSpec("MR", 0.1, grouping=grouping),
        ]
        base = make_dataset(rng, 120)
        auditor = IncrementalAuditor(specs, ThresholdModel(), base)
        assert_snapshot_matches(auditor.audit(), auditor.recompute())
        drive_random_updates(auditor, make_dataset(rng, 300), rng, n_ops)

    def test_matches_per_constraint_reference_evaluation(self):
        """Auditor max-violation equals evaluation.max_violation exactly."""
        rng = np.random.default_rng(11)
        base = make_dataset(rng, 150)
        specs = [FairnessSpec("SP", 0.03), FairnessSpec("FPR", 0.08)]
        auditor = IncrementalAuditor(specs, ThresholdModel(), base)
        auditor.append_rows(make_dataset(rng, 40))
        live = auditor.live_dataset()
        constraints = bind_specs(specs, live)
        reference = reference_max_violation(
            live.y, auditor.live_predictions(), constraints,
        )
        assert auditor.max_violation() == reference


# ---------------------------------------------------------------------------
# construction + update validation
# ---------------------------------------------------------------------------


class TestValidation:
    def test_custom_metric_is_rejected(self):
        rng = np.random.default_rng(0)
        custom = FairnessMetric(
            "CUSTOM",
            coefficients=lambda y, p: (np.zeros(len(y)), 0.0),
            rate=lambda y, p: float(np.mean(p)),
        )
        with pytest.raises(SpecificationError, match="custom"):
            IncrementalAuditor(
                FairnessSpec(custom, 0.05), ThresholdModel(),
                make_dataset(rng, 60),
            )

    def test_new_group_in_batch_is_rejected(self):
        rng = np.random.default_rng(1)
        region = rng.integers(0, 2, size=60).astype(np.int64)
        region[:2] = [0, 1]
        base = make_dataset(rng, 60, extras={"region": region})
        spec = FairnessSpec("SP", 0.05, grouping=by_attributes("region"))
        auditor = IncrementalAuditor(spec, ThresholdModel(), base)
        batch = make_dataset(
            rng, 20, extras={"region": np.full(20, 2, dtype=np.int64)},
        )
        with pytest.raises(SpecificationError, match="unknown group"):
            auditor.append_rows(batch)

    def test_batch_missing_per_row_extras_is_rejected(self):
        rng = np.random.default_rng(2)
        flag = np.zeros(60, dtype=bool)
        base = make_dataset(rng, 60, extras={"flag": flag})
        auditor = IncrementalAuditor(
            FairnessSpec("SP", 0.05), ThresholdModel(), base,
        )
        with pytest.raises(SpecificationError, match="extras"):
            auditor.append_rows(make_dataset(rng, 10))

    def test_retire_unknown_and_double_retire_raise(self):
        rng = np.random.default_rng(3)
        auditor = IncrementalAuditor(
            FairnessSpec("SP", 0.05), ThresholdModel(),
            make_dataset(rng, 80),
        )
        with pytest.raises(SpecificationError, match="out of range"):
            auditor.retire_rows([100])
        auditor.retire_rows([5, 6])
        with pytest.raises(SpecificationError, match="already retired"):
            auditor.retire_rows([6])

    def test_empty_batches_raise(self):
        rng = np.random.default_rng(4)
        auditor = IncrementalAuditor(
            FairnessSpec("SP", 0.05), ThresholdModel(),
            make_dataset(rng, 80),
        )
        with pytest.raises(SpecificationError, match="empty"):
            auditor.append_rows(
                X=np.zeros((0, 3)), y=np.zeros(0), sensitive=np.zeros(0),
            )
        with pytest.raises(SpecificationError, match="empty"):
            auditor.retire_rows([])

    def test_feature_width_mismatch_raises(self):
        rng = np.random.default_rng(5)
        auditor = IncrementalAuditor(
            FairnessSpec("SP", 0.05), ThresholdModel(),
            make_dataset(rng, 80),
        )
        with pytest.raises(SpecificationError, match="shape"):
            auditor.append_rows(
                X=np.zeros((4, 7)), y=np.zeros(4), sensitive=np.zeros(4),
            )


# ---------------------------------------------------------------------------
# delta-chained fingerprints
# ---------------------------------------------------------------------------


class TestDeltaFingerprint:
    def test_same_history_same_fingerprint(self):
        rng = np.random.default_rng(6)
        base = make_dataset(rng, 80)
        batch = make_dataset(rng, 20)
        spec = FairnessSpec("SP", 0.05)
        a = IncrementalAuditor(spec, ThresholdModel(), base)
        b = IncrementalAuditor(spec, ThresholdModel(), base)
        assert a.fingerprint == b.fingerprint == base.fingerprint()
        a.append_rows(batch)
        b.append_rows(batch)
        assert a.fingerprint == b.fingerprint
        a.retire_rows([3, 4])
        b.retire_rows([3, 4])
        assert a.fingerprint == b.fingerprint

    def test_history_order_and_content_matter(self):
        rng = np.random.default_rng(7)
        base = make_dataset(rng, 80)
        batch = make_dataset(rng, 20)
        spec = FairnessSpec("SP", 0.05)
        a = IncrementalAuditor(spec, ThresholdModel(), base)
        b = IncrementalAuditor(spec, ThresholdModel(), base)
        a.append_rows(batch)
        a.retire_rows([1])
        b.retire_rows([1])
        b.append_rows(batch)
        assert a.fingerprint != b.fingerprint  # order is part of identity

    def test_chain_primitives_distinguish_ops(self):
        append = append_digest(np.zeros((2, 2)), [0, 1], [0, 1])
        retire = retire_digest([0, 1])
        assert chain_fingerprint("p", "append", append) != chain_fingerprint(
            "p", "retire", retire,
        )
        assert chain_fingerprint("p", "append", append) != chain_fingerprint(
            "q", "append", append,
        )


# ---------------------------------------------------------------------------
# drift policy + warm retune
# ---------------------------------------------------------------------------


class TestDrift:
    def test_policy_tolerance_and_cooldown(self):
        policy = DriftPolicy(tolerance=0.05, min_updates=3)
        calm = {"max_violation": 0.04, "n_updates": 1}
        hot = {"max_violation": 0.06, "n_updates": 1}
        assert not policy.should_retune(calm)
        assert policy.should_retune(hot)
        policy.note_retune(hot)
        assert not policy.should_retune(
            {"max_violation": 0.06, "n_updates": 3},
        )
        assert policy.should_retune(
            {"max_violation": 0.06, "n_updates": 4},
        )

    def test_warm_options_shapes(self):
        class Report:
            lambdas = np.array([0.25])
            swapped = True

        class Model:
            report = Report()

        assert warm_options(Model()) == {
            "warm_lambda": 0.25, "warm_swapped": True,
        }
        Report.lambdas = np.array([0.1, -0.2])
        assert warm_options(Model()) == {"warm_lambdas": (0.1, -0.2)}
        assert warm_options(ThresholdModel()) == {}

    def test_warm_retune_saves_fits_and_rebases(self):
        dataset = load("adult", n=1500, seed=0)
        model = Engine("binary_search").solve(
            "SP <= 0.05", "LR", dataset, seed=0,
        )
        base = dataset.subset(np.arange(1000))
        auditor = IncrementalAuditor("SP <= 0.05", model, base)
        auditor.append_rows(dataset.subset(np.arange(1000, 1400)))
        cold = Engine("binary_search").solve(
            "SP <= 0.05", "LR", auditor.live_dataset(), seed=0,
        )
        warm = warm_retune(auditor, seed=0, strategy="binary_search")
        assert warm.report.n_fits <= cold.report.n_fits
        # rebase swapped the audited model and kept state exact
        assert auditor.model is warm
        assert_snapshot_matches(auditor.audit(), auditor.recompute())


# ---------------------------------------------------------------------------
# storage mechanics
# ---------------------------------------------------------------------------


class TestStorage:
    def test_growth_over_many_batches(self):
        rng = np.random.default_rng(8)
        base = make_dataset(rng, 50)
        auditor = IncrementalAuditor(
            FairnessSpec("SP", 0.05), ThresholdModel(), base,
        )
        pool = make_dataset(rng, 2000)
        for b in range(20):
            auditor.append_rows(pool.subset(np.arange(b * 100, (b + 1) * 100)))
        assert auditor.n_live == 50 + 2000
        assert auditor.n_total == 2050
        assert_snapshot_matches(auditor.audit(), auditor.recompute())

    def test_live_dataset_round_trips_extras(self):
        rng = np.random.default_rng(9)
        flag = rng.integers(0, 2, size=60).astype(np.int64)
        base = make_dataset(rng, 60, extras={"flag": flag})
        auditor = IncrementalAuditor(
            FairnessSpec("SP", 0.05), ThresholdModel(), base,
        )
        batch_flag = np.ones(15, dtype=np.int64)
        auditor.append_rows(
            make_dataset(rng, 15, extras={"flag": batch_flag}),
        )
        auditor.retire_rows([0])
        live = auditor.live_dataset()
        assert len(live) == 74
        expected = np.concatenate([flag[1:], batch_flag])
        assert np.array_equal(live.extras["flag"], expected)

    def test_counts_are_exact_integers(self):
        rng = np.random.default_rng(10)
        base = make_dataset(rng, 90)
        auditor = IncrementalAuditor(
            FairnessSpec("SP", 0.05), ThresholdModel(), base,
        )
        pred = ThresholdModel().predict(base.X)
        for name, j in (("A", 0), ("B", 1)):
            member = base.sensitive == j
            counts = auditor.counts()[0][name]
            assert counts["size"] == int(member.sum())
            assert counts["n_y1"] == int((base.y[member] == 1).sum())
            assert counts["pos0"] + counts["pos1"] == int(
                (pred[member] == 1).sum()
            )
