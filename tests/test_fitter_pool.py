"""Process-pool handoff and shared-memory lifecycle of WeightedFitter.

Two invariants under test.  First, the training-matrix handoff picks
the cheapest sound channel — re-opened memory map for columnar-backed
``X``, one shared-memory block otherwise, pickling as the last resort —
without perturbing results.  Second, the /dev/shm segment is reclaimed
on *every* exit path: clean close, estimator failure inside a worker,
and executor construction failure.  A leaked segment survives the
interpreter and eats physical memory until reboot, so each failure
test asserts on the actual /dev/shm directory, not just fitter state.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.core.fairness_metrics import METRIC_FACTORIES
from repro.core.fitter import WeightedFitter
from repro.core.spec import Constraint
from repro.datasets import encode_scenario, open_columnar
from repro.ml import GaussianNaiveBayes

SHM_DIR = "/dev/shm"


class ExplodingEstimator:
    """Picklable estimator that fails inside the pool worker."""

    def get_params(self):
        return {}

    def clone(self):
        return ExplodingEstimator()

    def fit(self, X, y, sample_weight=None):
        raise ValueError("boom inside worker")


def _shm_entries():
    try:
        return set(os.listdir(SHM_DIR))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _setup(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = (X[:, 0] + 0.3 * rng.normal(size=n) > 0).astype(np.int64)
    groups = rng.integers(0, 2, size=n)
    constraint = Constraint(
        metric=METRIC_FACTORIES["SP"](), epsilon=0.05,
        group_names=("a", "b"),
        g1_idx=np.nonzero(groups == 0)[0],
        g2_idx=np.nonzero(groups == 1)[0],
    )
    return X, y, [constraint]


L = np.array([[0.0], [0.2], [-0.3], [0.45]])


class TestHandoffChannels:
    def test_mmap_handoff_for_columnar_x(self, tmp_path):
        encode_scenario("imbalance", tmp_path, n=600, seed=0)
        data = open_columnar(tmp_path)
        train = data.subset(slice(0, 480))
        _, _, constraints = _setup()
        groups = np.asarray(train.sensitive)
        constraints[0] = Constraint(
            metric=METRIC_FACTORIES["SP"](), epsilon=0.05,
            group_names=("a", "b"),
            g1_idx=np.nonzero(groups == 0)[0],
            g2_idx=np.nonzero(groups == 1)[0],
        )
        serial = WeightedFitter(
            GaussianNaiveBayes(), train.X, train.y, constraints
        )
        ref = serial.fit_batch(L)
        pooled = WeightedFitter(
            GaussianNaiveBayes(), train.X, train.y, constraints, n_jobs=2
        )
        try:
            # exact_only pushes GNB past its batch protocol onto the
            # pool, where speculative clone fits overlap in wall-clock
            got = pooled.fit_batch(L, pool="process", exact_only=True)
            assert pooled._pool_handoff == "mmap"
            assert pooled._shm is None  # zero-copy: no shm block at all
            assert pooled.fit_paths.get("pool") == len(L)
            Xp = np.asarray(train.X)
            for m_s, m_p in zip(ref, got):
                assert np.array_equal(m_s.predict(Xp), m_p.predict(Xp))
        finally:
            pooled.close()
        assert pooled._pool_handoff is None

    def test_shm_handoff_for_in_memory_x(self):
        X, y, constraints = _setup()
        before = _shm_entries()
        fitter = WeightedFitter(
            GaussianNaiveBayes(), X, y, constraints, n_jobs=2
        )
        try:
            fitter.fit_batch(L, pool="process", exact_only=True)
            assert fitter._pool_handoff == "shm"
            assert fitter._shm is not None
        finally:
            fitter.close()
        assert fitter._shm is None
        assert _shm_entries() - before == set()

    def test_pickle_fallback_when_shm_unavailable(self, monkeypatch):
        import multiprocessing.shared_memory as shared_memory

        def _no_shm(*a, **k):
            raise OSError("shm exhausted")

        monkeypatch.setattr(shared_memory, "SharedMemory", _no_shm)
        X, y, constraints = _setup()
        fitter = WeightedFitter(
            GaussianNaiveBayes(), X, y, constraints, n_jobs=2
        )
        try:
            got = fitter.fit_batch(L, pool="process", exact_only=True)
            assert fitter._pool_handoff == "pickle"
            serial = WeightedFitter(
                GaussianNaiveBayes(), X, y, constraints
            )
            for m_s, m_p in zip(serial.fit_batch(L), got):
                assert np.array_equal(m_s.predict(X), m_p.predict(X))
        finally:
            fitter.close()


class TestShmLifecycle:
    def test_worker_estimator_error_leaves_no_residue(self):
        X, y, constraints = _setup()
        before = _shm_entries()
        fitter = WeightedFitter(
            ExplodingEstimator(), X, y, constraints, n_jobs=2
        )
        with pytest.raises(ValueError, match="boom inside worker"):
            fitter.fit_batch(L, pool="process")
        # the failing batch tore the executor AND the segment down —
        # this is the leak regression: estimator errors are re-raised,
        # not degraded, and used to leave the shm block allocated
        assert fitter._pool is None
        assert fitter._shm is None
        assert fitter._pool_handoff is None
        assert _shm_entries() - before == set()

    def test_pool_construction_failure_releases_segment(self, monkeypatch):
        import repro.core.fitter as fitter_mod

        def _broken_executor(*a, **k):
            raise OSError("fork failed")

        monkeypatch.setattr(
            fitter_mod, "ProcessPoolExecutor", _broken_executor
        )
        X, y, constraints = _setup()
        before = _shm_entries()
        fitter = WeightedFitter(
            GaussianNaiveBayes(), X, y, constraints, n_jobs=2
        )
        # startup failure is a pool fault: degrade to in-process fits
        # with one warning, results bit-identical
        with pytest.warns(RuntimeWarning, match="degrading"):
            got = fitter.fit_batch(L, pool="process", exact_only=True)
        assert fitter._shm is None
        assert _shm_entries() - before == set()
        serial = WeightedFitter(GaussianNaiveBayes(), X, y, constraints)
        for m_s, m_p in zip(serial.fit_batch(L), got):
            assert np.array_equal(m_s.predict(X), m_p.predict(X))

    def test_clean_reuse_then_close_idempotent(self):
        X, y, constraints = _setup()
        before = _shm_entries()
        fitter = WeightedFitter(
            GaussianNaiveBayes(), X, y, constraints, n_jobs=2
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # reuse must not re-warn
            fitter.fit_batch(L, pool="process", exact_only=True)
            fitter.fit_batch(L[:2] + 0.01, pool="process", exact_only=True)
        fitter.close()
        fitter.close()
        assert _shm_entries() - before == set()
