"""Golden snapshot tests: semantic drift in the engine fails loudly.

Each golden freezes the selected λ, validation accuracy, and max
constraint violation of one small seeded end-to-end workload — one per
(strategy × SP/FDR).  A behavior change anywhere in the weight kernels,
fitters, evaluators, or strategies that moves a selected λ shows up here
as a tier-1 failure with a readable diff, instead of silently shifting
benchmark numbers.

Regenerate after an *intentional* semantic change with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

and commit the refreshed ``tests/goldens/*.json`` alongside the change.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.api import Engine, Problem
from repro.datasets import load_scenario
from repro.ml import GaussianNaiveBayes
from repro.ml.model_selection import train_val_test_split

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

# one workload per strategy × metric; options pin every solver knob that
# affects the search trajectory
WORKLOADS = {
    "binary_search-sp": ("binary_search", "SP <= 0.05", {}),
    "binary_search-fdr": ("binary_search", "FDR <= 0.05", {}),
    "hill_climb-sp": ("hill_climb", "SP <= 0.05", {}),
    "hill_climb-fdr": ("hill_climb", "FDR <= 0.05", {}),
    "grid-sp": ("grid", "SP <= 0.05", dict(grid_steps=20, grid_max=0.5)),
    "grid-fdr": ("grid", "FDR <= 0.05", dict(grid_steps=20, grid_max=0.5)),
    "linear-sp": ("linear", "SP <= 0.05", dict(step=0.02)),
    "linear-fdr": ("linear", "FDR <= 0.05", dict(step=0.02)),
    "cmaes-sp": ("cmaes", "SP <= 0.05", dict(max_evals=32, seed=0)),
    "cmaes-fdr": ("cmaes", "FDR <= 0.05", dict(max_evals=32, seed=0)),
}


@pytest.fixture(scope="module")
def golden_splits():
    data = load_scenario("label_noise", n=1600, seed=5)
    strat = data.sensitive * 2 + data.y
    tr, va, _ = train_val_test_split(len(data), seed=5, stratify=strat)
    return data.subset(tr), data.subset(va)


def _run_workload(name, train, val):
    strategy, spec, options = WORKLOADS[name]
    fair = Engine(strategy, **options).solve(
        Problem(spec), GaussianNaiveBayes(), train, val
    )
    report = fair.report
    epsilons = {
        label: c.epsilon
        for label, c in zip(
            report.constraint_labels, report.val_constraints
        )
    }
    max_violation = max(
        abs(value) - epsilons[label]
        for label, value in report.validation["disparities"].items()
    )
    return {
        "strategy": report.strategy,
        "spec": spec,
        "lambdas": [round(float(v), 12) for v in report.lambdas],
        "accuracy": round(float(report.validation["accuracy"]), 12),
        "max_violation": round(float(max_violation), 12),
        "feasible": bool(report.feasible),
    }


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_golden(name, golden_splits, request):
    train, val = golden_splits
    got = _run_workload(name, train, val)
    path = GOLDEN_DIR / f"{name}.json"

    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(got, indent=2, sort_keys=True) + "\n")
        return

    assert path.exists(), (
        f"golden {path.name} missing; run pytest tests/test_goldens.py "
        f"--update-goldens to create it"
    )
    want = json.loads(path.read_text())
    assert got["strategy"] == want["strategy"]
    assert got["spec"] == want["spec"]
    assert got["feasible"] == want["feasible"]
    np.testing.assert_allclose(
        got["lambdas"], want["lambdas"], rtol=0, atol=1e-9,
        err_msg=f"{name}: selected λ drifted — if intentional, "
                f"regenerate with --update-goldens",
    )
    np.testing.assert_allclose(
        got["accuracy"], want["accuracy"], rtol=0, atol=1e-9,
        err_msg=f"{name}: validation accuracy drifted",
    )
    np.testing.assert_allclose(
        got["max_violation"], want["max_violation"], rtol=0, atol=1e-9,
        err_msg=f"{name}: max constraint violation drifted",
    )


def test_goldens_directory_matches_workloads():
    """No stale or orphaned golden files."""
    files = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    files -= {"trajectories"}  # owned by test_planner_equivalence.py
    assert files == set(WORKLOADS), (
        f"goldens out of sync: extra={sorted(files - set(WORKLOADS))}, "
        f"missing={sorted(set(WORKLOADS) - files)}"
    )
