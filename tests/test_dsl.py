"""Tests for the declarative spec DSL parser and round-tripping."""

import itertools

import pytest

from repro.core.dsl import (
    COMPOSITE_METRICS,
    DSLParseError,
    SpecSet,
    parse_spec,
)
from repro.core.exceptions import SpecificationError
from repro.core.fairness_metrics import METRIC_FACTORIES
from repro.core.grouping import by_predicate
from repro.core.spec import FairnessSpec
from repro.datasets import make_biased_dataset


def _equivalent(a, b):
    """Two SpecSets describe the same problem."""
    assert len(a) == len(b)
    for sa, sb in zip(a, b):
        assert sa.metric.name == sb.metric.name
        assert sa.epsilon == sb.epsilon
        assert getattr(sa.grouping, "dsl_attrs", None) == getattr(
            sb.grouping, "dsl_attrs", None
        )


class TestParse:
    def test_single_clause_default_grouping(self):
        specs = parse_spec("SP <= 0.03")
        assert isinstance(specs, SpecSet)
        assert len(specs) == 1
        assert specs[0].metric.name == "SP"
        assert specs[0].epsilon == 0.03
        assert specs[0].grouping.dsl_attrs == ()

    def test_attribute_grouping(self):
        specs = parse_spec("SP(race) <= 0.03")
        assert specs[0].grouping.dsl_attrs == ("race",)

    def test_intersectional_grouping(self):
        specs = parse_spec("MR(race * sex) <= 0.1")
        assert specs[0].metric.name == "MR"
        assert specs[0].grouping.dsl_attrs == ("race", "sex")

    def test_conjunction(self):
        specs = parse_spec("FPR <= 0.05 and FNR <= 0.05")
        assert [s.metric.name for s in specs] == ["FPR", "FNR"]

    def test_equalized_odds_composite(self):
        specs = parse_spec("EO <= 0.05")
        assert [s.metric.name for s in specs] == ["FPR", "FNR"]
        assert all(s.epsilon == 0.05 for s in specs)

    def test_predictive_parity_composite_with_attr(self):
        specs = parse_spec("PP(race) <= 0.04")
        assert [s.metric.name for s in specs] == ["FOR", "FDR"]
        assert all(s.grouping.dsl_attrs == ("race",) for s in specs)

    def test_case_and_whitespace_insensitive(self):
        _equivalent(parse_spec("sp<=0.03"), parse_spec("SP <= 0.03"))
        _equivalent(
            parse_spec("fpr <= 0.05 AND fnr <= 0.05"),
            parse_spec("FPR <= 0.05 and FNR <= 0.05"),
        )

    def test_scientific_notation_epsilon(self):
        assert parse_spec("SP <= 5e-2")[0].epsilon == 0.05

    def test_unicode_le(self):
        assert parse_spec("SP ≤ 0.03")[0].epsilon == 0.03

    def test_passthrough_coercion(self):
        spec = FairnessSpec("SP", 0.03)
        assert list(parse_spec(spec)) == [spec]
        assert list(parse_spec([spec])) == [spec]
        ss = parse_spec("SP <= 0.03")
        assert parse_spec(ss) is ss

    def test_mixed_list_coercion(self):
        specs = parse_spec([FairnessSpec("SP", 0.03), "FNR <= 0.05"])
        assert [s.metric.name for s in specs] == ["SP", "FNR"]


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "   ",
        "SP",
        "SP <=",
        "SP 0.03",
        "WRONG <= 0.03",
        "SP <= 0.03 FNR <= 0.05",
        "SP( <= 0.03",
        "SP(race <= 0.03",
        "SP(race,sex) <= 0.03",
        "SP() <= 0.03",
        "SP <= 1.5",
        "SP <= -0.1",
        "SP >= 0.03",
    ])
    def test_rejected(self, bad):
        with pytest.raises(SpecificationError):
            parse_spec(bad)

    def test_error_is_dsl_parse_error(self):
        with pytest.raises(DSLParseError, match="unknown metric"):
            parse_spec("NOPE <= 0.1")

    def test_non_spec_rejected(self):
        with pytest.raises(SpecificationError):
            parse_spec(42)


class TestRoundTrip:
    """Acceptance: parse(s).to_string() reparses to an equivalent spec."""

    GROUP_FORMS = ["", "(race)", "(race * sex)"]

    @pytest.mark.parametrize(
        "metric,group",
        list(itertools.product(sorted(METRIC_FACTORIES), GROUP_FORMS)),
    )
    def test_builtin_metrics(self, metric, group):
        s = f"{metric}{group} <= 0.05"
        specs = parse_spec(s)
        _equivalent(parse_spec(specs.to_string()), specs)

    @pytest.mark.parametrize(
        "metric,group",
        list(itertools.product(sorted(COMPOSITE_METRICS), GROUP_FORMS)),
    )
    def test_composites(self, metric, group):
        s = f"{metric}{group} <= 0.07"
        specs = parse_spec(s)
        _equivalent(parse_spec(specs.to_string()), specs)

    def test_conjunctions(self):
        s = "SP <= 0.03 and MR(race * sex) <= 0.1 and EO(race) <= 0.05"
        specs = parse_spec(s)
        _equivalent(parse_spec(specs.to_string()), specs)

    def test_canonical_is_order_insensitive(self):
        a = parse_spec("FNR <= 0.05 and FPR <= 0.05")
        b = parse_spec("FPR<=0.05 and FNR <= 5e-2")
        assert a.canonical() == b.canonical()

    def test_canonical_reparses_equivalently_modulo_order(self):
        specs = parse_spec("FNR <= 0.05 and FPR <= 0.05")
        re = parse_spec(specs.canonical())
        assert sorted(s.metric.name for s in re) == sorted(
            s.metric.name for s in specs
        )

    def test_non_dsl_grouping_not_printable(self):
        spec = FairnessSpec(
            "SP", 0.03,
            grouping=by_predicate(a=lambda d: d.y == 0, b=lambda d: d.y == 1),
        )
        with pytest.raises(SpecificationError, match="not expressible"):
            spec.to_string()


class TestBinding:
    @pytest.fixture(scope="class")
    def race_sex_data(self):
        data = make_biased_dataset(
            "toy-rs", n=400, group_names=("A", "B"),
            group_proportions=(0.6, 0.4), group_base_rates=(0.5, 0.3),
            sensitive_attribute="race", seed=5,
        )
        rng_sex = (data.y + data.sensitive) % 2  # deterministic second attr
        data.extras["sex"] = rng_sex
        return data

    def test_sensitive_attribute_binding(self, race_sex_data):
        constraints = parse_spec("SP(race) <= 0.05")[0].bind(race_sex_data)
        assert len(constraints) == 1
        assert constraints[0].group_names == ("A", "B")

    def test_extras_binding(self, race_sex_data):
        constraints = parse_spec("SP(sex) <= 0.05")[0].bind(race_sex_data)
        assert len(constraints) == 1

    def test_intersectional_binding(self, race_sex_data):
        constraints = parse_spec(
            "MR(race * sex) <= 0.1"
        )[0].bind(race_sex_data)
        # 4 intersectional groups -> C(4,2) = 6 pairwise constraints
        assert len(constraints) == 6
        assert "race=" in constraints[0].group_names[0]

    def test_unknown_attribute_raises_at_bind(self, race_sex_data):
        spec = parse_spec("SP(nationality) <= 0.05")[0]
        with pytest.raises(SpecificationError, match="nationality"):
            spec.bind(race_sex_data)
