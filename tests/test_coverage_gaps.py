"""Targeted tests for paths not covered elsewhere."""

import numpy as np
import pytest

from repro import FairnessSpec, OmniFair
from repro.analysis import baseline_frontier, omnifair_frontier
from repro.core.evaluation import (
    all_satisfied,
    disparity_vector,
    max_violation,
)
from repro.core.fairness_metrics import average_error_cost_parity
from repro.core.spec import bind_specs
from repro.ml import LinearSVM, LogisticRegression


class TestEvaluationHelpers:
    def test_max_violation_sign(self, two_group_splits):
        train, _, _ = two_group_splits
        constraints = bind_specs([FairnessSpec("SP", 0.5)], train)
        pred = np.zeros(len(train), dtype=np.int64)
        # constant prediction => zero disparity => violation negative
        assert max_violation(train.y, pred, constraints) < 0
        assert all_satisfied(train.y, pred, constraints)

    def test_disparity_vector_order(self, three_group_splits):
        train, _, _ = three_group_splits
        constraints = bind_specs([FairnessSpec("SP", 0.1)], train)
        pred = (train.X[:, 0] > 0).astype(np.int64)
        vec = disparity_vector(train.y, pred, constraints)
        assert vec.shape == (3,)
        for value, c in zip(vec, constraints):
            assert value == pytest.approx(c.disparity(train.y, pred))


class TestFrontierVariants:
    def test_omnifair_frontier_custom_metric_obj(self, two_group_splits):
        train, val, test = two_group_splits
        points = omnifair_frontier(
            train, val, test, LogisticRegression(max_iter=150),
            metric_obj=average_error_cost_parity(1.0, 2.0),
            epsilons=[0.1, 0.3],
        )
        assert points

    def test_calmon_frontier_runs(self, two_group_splits):
        train, val, test = two_group_splits
        points = baseline_frontier(
            "calmon", train, val, test,
            estimator=LogisticRegression(max_iter=150),
            knobs=[0.0, 0.2],
        )
        assert len(points) == 2

    def test_celis_frontier_handles_infeasible_knobs(self, two_group_splits):
        train, val, test = two_group_splits
        # epsilon=0.0 infeasible under MR → that knob is skipped
        points = baseline_frontier(
            "celis", train, val, test, metric="MR", knobs=[0.0, 0.3]
        )
        assert all(p.knob != 0.0 for p in points)

    def test_agarwal_frontier_runs(self, two_group_splits):
        train, val, test = two_group_splits
        points = baseline_frontier(
            "agarwal", train, val, test,
            estimator=LogisticRegression(max_iter=150), knobs=[0.1],
        )
        assert len(points) == 1


class TestSVMInOmniFair:
    def test_svm_is_tunable(self, two_group_splits):
        train, val, _ = two_group_splits
        of = OmniFair(
            LinearSVM(max_iter=200), FairnessSpec("SP", 0.08)
        ).fit(train, val)
        assert of.validation_report_["feasible"]


class TestTrainerValSplit:
    def test_auto_split_is_stratified(self, two_group_data):
        """The internal split must keep every (group,label) cell present in
        both halves, or constraint binding would fail."""
        train, val = OmniFair._split_validation(two_group_data, 0.25, seed=0)
        for d in (train, val):
            cells = set(zip(d.sensitive.tolist(), d.y.tolist()))
            assert cells == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_val_fraction_respected(self, two_group_data):
        train, val = OmniFair._split_validation(two_group_data, 0.25, seed=0)
        assert len(val) == pytest.approx(0.25 * len(two_group_data), abs=2)


class TestMetricReprAndLabels:
    def test_metric_repr(self):
        from repro.core.fairness_metrics import (
            false_discovery_rate_parity,
            statistical_parity,
        )

        assert "constant" in repr(statistical_parity())
        assert "model-parameterized" in repr(false_discovery_rate_parity())

    def test_aec_name_embeds_costs(self):
        metric = average_error_cost_parity(2.0, 0.5)
        assert "2.0" in metric.name and "0.5" in metric.name
