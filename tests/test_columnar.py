"""Out-of-core columnar store: round-trip identity, sidecars, corruption.

The columnar backend's contract is *bit identity*: an encoded-and-
reopened dataset must produce the same fingerprint, the same compiled
evaluator counts, and the same selected λ as its in-memory twin —
nothing here is approximate.  A damaged store must warn and refuse to
open (``ColumnarFormatError``), never return wrong counts.
"""

from __future__ import annotations

import json
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine, Problem
from repro.core.kernels import CompiledEvaluator
from repro.core.spec import bind_specs
from repro.datasets import (
    ColumnarDataset,
    ColumnarFormatError,
    Dataset,
    encode_dataset,
    encode_scenario,
    load,
    load_scenario,
    open_columnar,
)
from repro.datasets.columnar import mmap_source, sidecar_order
from repro.datasets.scenarios import SCENARIOS
from repro.ml import DecisionTree, GaussianNaiveBayes


def _random_dataset(rng, n, d, n_groups=2, extras=True):
    X = rng.normal(size=(n, d))
    y = rng.integers(0, 2, size=n)
    if y.min() == y.max():
        y[: n // 2] = 1 - y[0]
    sensitive = rng.integers(0, n_groups, size=n)
    extra = {}
    if extras:
        extra = {
            "is_val": rng.random(n) < 0.3,
            "score": rng.normal(size=n),
            "seed": 7,
            "note": "metadata stays metadata",
        }
    return Dataset(
        name="unit", X=X, y=y, sensitive=sensitive,
        group_names=tuple(f"g{i}" for i in range(n_groups)),
        sensitive_attribute="grp",
        feature_names=tuple(f"f{j}" for j in range(d)),
        extras=extra,
    )


class TestRoundTrip:
    def test_arrays_fingerprint_and_sidecars(self, tmp_path):
        rng = np.random.default_rng(0)
        data = _random_dataset(rng, 500, 4, n_groups=3)
        manifest = encode_dataset(data, tmp_path)
        got = open_columnar(tmp_path)
        assert isinstance(got, ColumnarDataset)
        assert np.array_equal(got.X, data.X)
        assert np.array_equal(got.y, data.y)
        assert np.array_equal(got.sensitive, data.sensitive)
        assert np.array_equal(got.extras["is_val"], data.extras["is_val"])
        assert got.extras["is_val"].dtype == np.bool_
        assert got.extras["seed"] == 7 and got.extras["note"]
        # the streamed fingerprint is bit-identical to the in-memory one
        assert manifest["fingerprint"] == data.fingerprint()
        assert got.fingerprint() == data.fingerprint()
        assert got.verify_fingerprint()
        # columns stay memory-mapped through Dataset.__post_init__
        assert isinstance(got.X, np.memmap)
        assert isinstance(got.y, np.memmap)
        # group sidecar == stable sort by group code
        for g in range(3):
            assert np.array_equal(
                got.group_rows(g), np.nonzero(data.sensitive == g)[0]
            )
        assert np.array_equal(
            got.group_rows("g1"), got.group_rows(1)
        )
        with pytest.raises(KeyError, match="unknown group"):
            got.group_rows("nope")
        # feature sidecar == the presort the tree builder computes
        assert np.array_equal(
            np.asarray(got.feature_order),
            np.argsort(data.X, axis=0, kind="mergesort"),
        )

    def test_streaming_scenario_encode_equals_materialized(self, tmp_path):
        # odd chunk size, bool + positional float extras
        for name, overrides in (("label_noise", {}), ("drifting_mix", {})):
            root = tmp_path / name
            encode_scenario(name, root, n=3000, seed=5, chunk_rows=713,
                            **overrides)
            got = open_columnar(root)
            ref = load_scenario(name, n=3000, seed=5, **overrides)
            assert got.fingerprint() == ref.fingerprint()
            assert np.array_equal(got.X, ref.X)
            for key, value in ref.extras.items():
                if isinstance(value, np.ndarray):
                    assert np.array_equal(got.extras[key], value)
                    assert got.extras[key].dtype == value.dtype

    def test_chunk_size_does_not_change_the_store(self, tmp_path):
        a = encode_scenario("imbalance", tmp_path / "a", n=2000, seed=1,
                            chunk_rows=64)
        b = encode_scenario("imbalance", tmp_path / "b", n=2000, seed=1,
                            chunk_rows=1999)
        assert a["fingerprint"] == b["fingerprint"]

    def test_no_feature_order_flag(self, tmp_path):
        data = _random_dataset(np.random.default_rng(1), 100, 2)
        encode_dataset(data, tmp_path, feature_order=False)
        got = open_columnar(tmp_path)
        assert got.feature_order is None
        assert got.fingerprint() == data.fingerprint()

    def test_list_extras_refused(self, tmp_path):
        data = _random_dataset(np.random.default_rng(2), 50, 2, extras=False)
        data.extras["roles"] = ["a"] * 50
        with pytest.raises(ValueError, match="object array"):
            encode_dataset(data, tmp_path)

    def test_hundred_million_row_family_registered(self):
        family = SCENARIOS["hundred_million_row"]
        assert family.n_default == 100_000_000
        small = load_scenario("hundred_million_row", n=600, seed=0)
        assert len(small) == 600 and small.n_groups == 2


class TestViewsAndZeroCopy:
    def test_subset_slice_is_a_view(self, tmp_path):
        data = _random_dataset(np.random.default_rng(3), 400, 3)
        encode_dataset(data, tmp_path)
        got = open_columnar(tmp_path)
        sub = got.subset(slice(50, 250))
        for a, b in ((sub.X, got.X), (sub.y, got.y),
                     (sub.sensitive, got.sensitive),
                     (sub.extras["is_val"], got.extras["is_val"])):
            assert np.shares_memory(a, b)
        # fancy indexing copies — numpy has no view of a scattered row
        # set; this is the documented cost of permutation splits
        fancy = got.subset(np.array([3, 1, 2]))
        assert not np.shares_memory(fancy.X, got.X)

    def test_iter_chunks_streams_views(self, tmp_path):
        data = _random_dataset(np.random.default_rng(4), 300, 2)
        encode_dataset(data, tmp_path)
        got = open_columnar(tmp_path)
        chunks = list(got.iter_chunks(chunk_size=77))
        assert sum(len(c) for c in chunks) == 300
        assert all(np.shares_memory(c.X, got.X) for c in chunks)
        assert np.array_equal(
            np.vstack([c.X for c in chunks]), data.X
        )
        with pytest.raises(ValueError, match="chunk_size"):
            next(got.iter_chunks(0))

    def test_post_init_preserves_conforming_arrays(self):
        X = np.zeros((4, 2))
        y = np.zeros(4, dtype=np.int64)
        s = np.zeros(4, dtype=np.int64)
        data = Dataset(name="t", X=X, y=y, sensitive=s)
        assert data.X is X and data.y is y and data.sensitive is s
        # wrong dtypes still coerce
        data2 = Dataset(name="t", X=X.astype(np.float32), y=list(y),
                        sensitive=s)
        assert data2.X.dtype == np.float64 and data2.y.dtype == np.int64

    def test_mmap_source_resolves_windows(self, tmp_path):
        data = _random_dataset(np.random.default_rng(5), 200, 3)
        encode_dataset(data, tmp_path)
        got = open_columnar(tmp_path)
        # a row window of the map re-opens to the identical bytes
        window = got.subset(slice(40, 160)).X
        path, dtype_str, shape, offset = mmap_source(window)
        reopened = np.memmap(path, dtype=np.dtype(dtype_str), mode="r",
                             shape=shape, offset=offset)
        assert np.array_equal(reopened, window)
        # in-memory arrays and non-contiguous views resolve to None
        assert mmap_source(data.X) is None
        assert mmap_source(got.X[:, :2]) is None

    def test_sidecar_order_full_matrix_only(self, tmp_path):
        data = _random_dataset(np.random.default_rng(6), 150, 3)
        encode_dataset(data, tmp_path)
        got = open_columnar(tmp_path)
        order = sidecar_order(np.asarray(got.X))
        assert order is not None
        assert np.array_equal(
            np.asarray(order),
            np.argsort(data.X, axis=0, kind="mergesort"),
        )
        # windows and plain arrays fall back to sorting
        assert sidecar_order(got.subset(slice(0, 100)).X) is None
        assert sidecar_order(data.X) is None

    def test_tree_consumes_sidecar_presort(self, tmp_path):
        data = _random_dataset(np.random.default_rng(7), 240, 3,
                               extras=False)
        encode_dataset(data, tmp_path)
        got = open_columnar(tmp_path)
        ref = DecisionTree(max_depth=4, random_state=0).fit(data.X, data.y)
        via_map = DecisionTree(max_depth=4, random_state=0).fit(
            got.X, got.y
        )
        assert np.array_equal(ref.predict(data.X), via_map.predict(data.X))
        assert np.array_equal(ref.threshold_, via_map.threshold_)


class TestEngineEquivalence:
    def test_grid_solve_identical_to_in_memory(self, tmp_path):
        encode_scenario("million_row", tmp_path, n=12_000, seed=0,
                        chunk_rows=2048)
        col = open_columnar(tmp_path)
        ref = load_scenario("million_row", n=12_000, seed=0)

        def slice_splits(d):
            n = len(d)
            a, b = int(round(n * 0.6)), int(round(n * 0.8))
            return d.subset(slice(0, a)), d.subset(slice(a, b))

        results = {}
        for kind, d, chunk in (("col", col, 1024), ("ref", ref, None)):
            train, val = slice_splits(d)
            engine = Engine("grid", grid_steps=8, grid_max=0.5,
                            chunk_size=chunk)
            results[kind] = engine.solve(
                Problem("SP <= 0.05"), GaussianNaiveBayes(), train, val
            ).report
        assert np.array_equal(
            results["col"].lambdas, results["ref"].lambdas
        )
        assert results["col"].lambdas[0] != 0.0
        assert (
            results["col"].validation["accuracy"]
            == results["ref"].validation["accuracy"]
        )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(60, 300),
        d=st.integers(1, 4),
        n_groups=st.integers(2, 3),
        chunk=st.integers(1, 400),
        encode_chunk=st.integers(7, 128),
    )
    def test_roundtrip_evaluation_bitwise(self, seed, n, d, n_groups,
                                          chunk, encode_chunk):
        rng = np.random.default_rng(seed)
        data = _random_dataset(rng, n, d, n_groups=n_groups)
        with tempfile.TemporaryDirectory() as root:
            encode_dataset(data, root, chunk_rows=encode_chunk)
            got = open_columnar(root)
            assert got.fingerprint() == data.fingerprint()
            constraints = bind_specs(Problem("SP <= 0.05").specs, got)
            ref_constraints = bind_specs(Problem("SP <= 0.05").specs, data)
            model = GaussianNaiveBayes().fit(data.X, data.y)
            ev = CompiledEvaluator(constraints, got.y, chunk_size=chunk)
            ev_ref = CompiledEvaluator(ref_constraints, data.y)
            d_got, a_got = ev.score_models_batch([model], got.X)
            d_ref, a_ref = ev_ref.score_models_batch([model], data.X)
            assert np.array_equal(d_got, d_ref)
            assert np.array_equal(a_got, a_ref)


class TestCorruptionDiscipline:
    def _store(self, tmp_path):
        data = _random_dataset(np.random.default_rng(8), 120, 2)
        encode_dataset(data, tmp_path)
        return tmp_path

    def _assert_refuses(self, root, match):
        with pytest.warns(RuntimeWarning, match="refused"):
            with pytest.raises(ColumnarFormatError, match=match):
                open_columnar(root)

    def test_missing_manifest(self, tmp_path):
        self._assert_refuses(tmp_path, "no manifest")

    def test_garbled_manifest(self, tmp_path):
        root = self._store(tmp_path)
        (root / "manifest.json").write_text("{not json")
        self._assert_refuses(root, "manifest unreadable")

    def test_unsupported_format_tag(self, tmp_path):
        root = self._store(tmp_path)
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["format"] = "repro-columnar/v999"
        (root / "manifest.json").write_text(json.dumps(manifest))
        self._assert_refuses(root, "unsupported format")

    def test_missing_column_file(self, tmp_path):
        root = self._store(tmp_path)
        (root / "y.npy").unlink()
        self._assert_refuses(root, "missing")

    def test_truncated_column_file(self, tmp_path):
        root = self._store(tmp_path)
        payload = (root / "X.npy").read_bytes()
        (root / "X.npy").write_bytes(payload[: len(payload) // 2])
        self._assert_refuses(root, "X")

    def test_dtype_shape_drift(self, tmp_path):
        root = self._store(tmp_path)
        y = np.load(root / "y.npy")
        np.save(root / "y.npy", y.astype(np.int32))
        self._assert_refuses(root, "column y")

    def test_tampered_bytes_fail_verify(self, tmp_path):
        root = self._store(tmp_path)
        X = np.lib.format.open_memmap(root / "X.npy", mode="r+")
        X[0, 0] += 1.0
        X.flush()
        del X
        # structurally intact, so a plain open succeeds...
        open_columnar(root)
        # ...but a verifying open re-hashes the bytes and refuses
        self._assert_refuses_verify(root)

    def _assert_refuses_verify(self, root):
        with pytest.warns(RuntimeWarning, match="refused"):
            with pytest.raises(ColumnarFormatError, match="fingerprint"):
                open_columnar(root, verify=True)

    def test_corrupt_sidecar_refuses_on_access(self, tmp_path):
        root = self._store(tmp_path)
        (root / "feature_order.npy").write_bytes(b"junk")
        got = open_columnar(root)
        with pytest.warns(RuntimeWarning, match="refused"):
            with pytest.raises(ColumnarFormatError, match="sidecar"):
                got.feature_order

    def test_crashed_encode_never_opens(self, tmp_path):
        # a writer that never finalized leaves no manifest behind
        from repro.datasets.columnar import ColumnarWriter

        writer = ColumnarWriter(tmp_path, 100, name="t")
        writer.append(np.zeros((40, 2)), np.zeros(40, dtype=np.int64),
                      np.zeros(40, dtype=np.int64))
        self._assert_refuses(tmp_path, "no manifest")
        with pytest.raises(ValueError, match="incomplete"):
            writer.finalize()


class TestLoaderIntegration:
    def test_load_columnar_dir_and_suffix(self, tmp_path):
        encode_scenario("imbalance", tmp_path, n=1000, seed=0)
        via_dir = load("scenario:imbalance", columnar_dir=tmp_path)
        via_suffix = load("scenario:imbalance@columnar",
                          columnar_dir=tmp_path)
        assert via_dir.fingerprint() == via_suffix.fingerprint()
        assert isinstance(via_dir, ColumnarDataset)

    def test_suffix_without_dir_raises(self):
        with pytest.raises(KeyError, match="columnar"):
            load("scenario:imbalance@columnar")

    def test_name_mismatch_raises(self, tmp_path):
        encode_scenario("imbalance", tmp_path, n=500, seed=0)
        with pytest.raises(KeyError, match="holds"):
            load("scenario:million_row@columnar", columnar_dir=tmp_path)
