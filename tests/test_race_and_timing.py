"""The ``race`` meta-strategy, history timing fields, and round_times."""

import pickle

import numpy as np
import pytest

from repro.analysis.timing import round_times
from repro.api import Engine
from repro.core.exceptions import InfeasibleConstraintError
from repro.core.history import HistoryPoint
from repro.ml import GaussianNaiveBayes


class TestRace:
    def test_race_single_constraint(self, two_group_splits):
        train, val, _ = two_group_splits
        fm = Engine("race").solve(
            "SP <= 0.1", GaussianNaiveBayes(), train, val,
        )
        assert fm.report.strategy == "race"
        assert fm.report.feasible
        assert abs(list(fm.report.disparities.values())[0]) <= 0.1 + 1e-9
        # the report reflects the whole race's budget, not one component
        assert fm.report.n_fits >= len(fm.report.history)

    def test_race_multi_constraint(self, three_group_splits):
        train, val, _ = three_group_splits
        fm = Engine("race", strategies=("hill_climb", "cmaes")).solve(
            "SP <= 0.1", GaussianNaiveBayes(), train, val,
        )
        assert fm.report.feasible
        assert fm.report.lambdas.shape == (3,)

    def test_race_matches_a_component_lambda(self, two_group_splits):
        """The winner's λ equals what that component finds standalone."""
        train, val, _ = two_group_splits
        racer = Engine("race", strategies=("binary_search",)).solve(
            "SP <= 0.1", GaussianNaiveBayes(), train, val,
        )
        solo = Engine("binary_search").solve(
            "SP <= 0.1", GaussianNaiveBayes(), train, val,
        )
        np.testing.assert_allclose(
            racer.report.lambdas, solo.report.lambdas, rtol=0, atol=0,
        )

    def test_race_shares_fit_cache(self, two_group_splits):
        """Components racing the same λ values hit each other's fits."""
        train, val, _ = two_group_splits
        fm = Engine("race", strategies=("grid", "linear"),
                    grid_max=0.4, grid_steps=4, strict=False).solve(
            "SP <= 0.1", GaussianNaiveBayes(), train, val,
        )
        # both components fit Λ=0 at minimum; the second must hit
        assert fm.report.fit_cache_hits >= 1

    def test_race_all_infeasible_raises(self, two_group_splits):
        train, val, _ = two_group_splits
        with pytest.raises(InfeasibleConstraintError, match="race"):
            Engine("race", strategies=("grid",)).solve(
                "SP <= 0.000001", GaussianNaiveBayes(), train, val,
            )

    def test_race_on_thread_backend(self, two_group_splits):
        train, val, _ = two_group_splits
        fm = Engine("race", backend="thread:2").solve(
            "SP <= 0.1", GaussianNaiveBayes(), train, val,
        )
        assert fm.report.feasible

    def test_race_rejects_nonpositive_interleave(self, two_group_splits):
        from repro.core.exceptions import SpecificationError

        train, val, _ = two_group_splits
        with pytest.raises(SpecificationError, match="interleave"):
            Engine("race", interleave=0).solve(
                "SP <= 0.1", GaussianNaiveBayes(), train, val,
            )

    def test_race_rejects_legacy_solve_component(self, two_group_splits):
        from repro.core.exceptions import SpecificationError
        from repro.core.strategies import (
            SearchStrategy,
            register_strategy,
            unregister_strategy,
        )

        @register_strategy
        class LegacyOnly(SearchStrategy):
            name = "legacy_only_tmp"

            def solve(self, fitter, val_constraints, X_val, y_val,
                      config):
                raise AssertionError("unreachable")

        train, val, _ = two_group_splits
        try:
            with pytest.raises(SpecificationError,
                               match="ask/tell planner"):
                Engine("race", strategies=("legacy_only_tmp",)).solve(
                    "SP <= 0.1", GaussianNaiveBayes(), train, val,
                )
        finally:
            unregister_strategy("legacy_only_tmp")


class TestBackendKnobs:
    def test_serial_rejects_worker_count(self):
        from repro.core.exceptions import SpecificationError
        from repro.core.executor import resolve_backend

        with pytest.raises(SpecificationError, match="serial"):
            resolve_backend("serial:8")

    def test_fitter_n_jobs_wins_over_backend_width(self,
                                                   two_group_splits):
        from repro.core.dsl import parse_spec
        from repro.core.executor import ThreadBackend
        from repro.core.fitter import WeightedFitter
        from repro.core.planner import PlanContext
        from repro.core.spec import bind_specs

        train, _, _ = two_group_splits
        tc = bind_specs(parse_spec("SP <= 0.1"), train)
        fitter = WeightedFitter(
            GaussianNaiveBayes(), train.X, train.y, tc, n_jobs=6,
        )
        ctx = PlanContext(fitter, tc, train.X, train.y)
        backend = ThreadBackend(n_workers=2)
        assert backend._pool_args(ctx) == (6, "thread")
        fitter.n_jobs = None
        assert backend._pool_args(ctx) == (2, "thread")


class TestHistoryTiming:
    def test_history_points_carry_timing_fields(self, two_group_splits):
        train, val, _ = two_group_splits
        fm = Engine("grid", grid_steps=4).solve(
            "SP <= 0.2", GaussianNaiveBayes(), train, val,
        )
        for point in fm.report.history:
            assert point.wall_time_s is not None
            assert point.wall_time_s >= 0.0
            assert point.batch_id is not None

    def test_old_three_field_pickles_load(self):
        """Pre-ISSUE-5 histories round-trip into the extended tuple."""
        legacy = pickle.dumps((0.5, -0.02, 0.91))
        lam, disparity, accuracy = pickle.loads(legacy)
        point = HistoryPoint(lam, disparity, accuracy)
        assert point.wall_time_s is None
        assert point.batch_id is None
        # positional unpacking of the first three fields still works
        a, b, c, *_ = point
        assert (a, b, c) == (0.5, -0.02, 0.91)

    def test_round_times_aggregates_by_batch(self, two_group_splits):
        train, val, _ = two_group_splits
        fm = Engine("binary_search").solve(
            "SP <= 0.1", GaussianNaiveBayes(), train, val,
        )
        rounds = round_times(fm.report.history)
        assert rounds, "no rounds attributed"
        assert sum(n for _, _, n in rounds) == len(fm.report.history)
        total = sum(seconds for _, seconds, n in rounds)
        assert total > 0
        # batch ids are monotone
        ids = [batch_id for batch_id, _, _ in rounds]
        assert ids == sorted(ids)

    def test_round_times_skips_legacy_points(self):
        history = [
            HistoryPoint(0.1, -0.05, 0.9),            # legacy: no timing
            HistoryPoint(0.2, -0.01, 0.91, 0.5, 7),
            HistoryPoint(0.3, 0.01, 0.92, 0.25, 7),
        ]
        assert round_times(history) == [(7, 0.75, 2)]
