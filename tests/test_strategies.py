"""Tests for the search-strategy registry and the new solvers."""

import numpy as np
import pytest

from repro import FairnessSpec, OmniFair, SpecificationError
from repro.api import Engine
from repro.core.single import SingleTuneResult
from repro.core.strategies import (
    BinarySearchConfig,
    GridConfig,
    SearchStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
    resolve_strategy_name,
    unregister_strategy,
)
from repro.ml import LogisticRegression


class TestRegistry:
    def test_builtins_registered(self):
        names = available_strategies()
        for expected in ("binary_search", "linear", "grid", "hill_climb",
                         "cmaes"):
            assert expected in names

    def test_get_unknown_raises(self):
        with pytest.raises(SpecificationError, match="unknown search"):
            get_strategy("nope")

    def test_auto_resolution(self):
        assert resolve_strategy_name("auto", 1) == "binary_search"
        assert resolve_strategy_name("auto", 3) == "hill_climb"
        assert resolve_strategy_name("grid", 3) == "grid"

    def test_register_rejects_bad_classes(self):
        with pytest.raises(SpecificationError):
            register_strategy(object)

        class NoName(SearchStrategy):
            name = None

        with pytest.raises(SpecificationError, match="name"):
            register_strategy(NoName)

        class Reserved(SearchStrategy):
            name = "auto"

        with pytest.raises(SpecificationError, match="reserved"):
            register_strategy(Reserved)

    def test_third_party_registration_end_to_end(self, two_group_splits):
        """A custom strategy plugs in and is dispatched by the shim."""
        train, val, _ = two_group_splits

        @register_strategy
        class FixedLambda(SearchStrategy):
            name = "fixed_lambda"
            config_cls = BinarySearchConfig

            def solve(self, fitter, val_constraints, X_val, y_val, config):
                model = fitter.fit(np.array([0.3]),
                                   prev_model=fitter.fit_unweighted())
                return SingleTuneResult(
                    model=model, lam=0.3, feasible=True, swapped=False,
                    n_fits=fitter.n_fits, history=[],
                )

        try:
            of = OmniFair(
                LogisticRegression(max_iter=150),
                FairnessSpec("SP", 0.5),
                search="fixed_lambda",
            ).fit(train, val)
            assert of.lambdas_.tolist() == [0.3]
            assert of.report_.strategy == "fixed_lambda"
        finally:
            unregister_strategy("fixed_lambda")
        with pytest.raises(SpecificationError):
            OmniFair(
                LogisticRegression(), FairnessSpec("SP", 0.5),
                search="fixed_lambda",
            )


class TestConfigs:
    def test_strict_rejects_unknown_options(self):
        with pytest.raises(SpecificationError, match="unknown option"):
            GridConfig.build({"grid_steps": 3, "typo": 1})

    def test_non_strict_ignores_unknown_options(self):
        cfg = GridConfig.build({"grid_steps": 3, "delta": 0.5}, strict=False)
        assert cfg.grid_steps == 3
        assert cfg.grid_max == 1.0

    def test_engine_validates_options_eagerly(self):
        with pytest.raises(SpecificationError, match="unknown option"):
            Engine("grid", typo=1)

    def test_engine_rejects_unknown_strategy(self):
        with pytest.raises(SpecificationError, match="unknown search"):
            Engine("nope")

    def test_non_strict_still_rejects_universal_typos(self):
        # cross-strategy legacy knobs pass, options nobody accepts don't
        Engine("auto", strict=False, delta=0.01, grid_steps=5)
        with pytest.raises(SpecificationError, match="no registered"):
            Engine("auto", strict=False, grid_stepz=20)

    def test_run_omnifair_rejects_typoed_kwargs(self, two_group_data):
        from repro.analysis.runner import run_omnifair
        from repro.ml import LogisticRegression

        with pytest.raises(SpecificationError, match="no registered"):
            run_omnifair(
                two_group_data, LogisticRegression(max_iter=100),
                epsilon=0.1, n_splits=1, grid_stepz=20,
            )


class TestSolvers:
    def test_linear_solves_single_constraint(self, two_group_splits):
        train, val, _ = two_group_splits
        fm = Engine("linear", step=0.1).solve(
            "SP <= 0.05", LogisticRegression(max_iter=150), train, val,
        )
        assert fm.report.feasible
        assert fm.report.strategy == "linear"
        assert abs(
            list(fm.report.disparities.values())[0]
        ) <= 0.05 + 1e-9

    def test_linear_rejects_multi_constraint(self, three_group_splits):
        train, val, _ = three_group_splits
        with pytest.raises(SpecificationError, match="exactly one"):
            Engine("linear").solve(
                "SP <= 0.06", LogisticRegression(max_iter=150), train, val,
            )

    def test_binary_search_rejects_multi_constraint(self, three_group_splits):
        train, val, _ = three_group_splits
        with pytest.raises(SpecificationError, match="exactly one"):
            Engine("binary_search").solve(
                "SP <= 0.06", LogisticRegression(max_iter=150), train, val,
            )

    def test_cmaes_solves_single_constraint(self, two_group_splits):
        train, val, _ = two_group_splits
        fm = Engine("cmaes", max_evals=40, seed=0).solve(
            "SP <= 0.05", LogisticRegression(max_iter=150), train, val,
        )
        assert fm.report.feasible
        assert fm.report.n_fits == len(fm.report.history)

    def test_cmaes_solves_multi_constraint(self, three_group_splits):
        train, val, _ = three_group_splits
        fm = Engine("cmaes", max_evals=80, seed=1).solve(
            "SP <= 0.08", LogisticRegression(max_iter=150), train, val,
        )
        assert fm.report.lambdas.shape == (3,)
        assert fm.report.feasible

    def test_hill_climb_single_reduces_to_algorithm1(self, two_group_splits):
        train, val, _ = two_group_splits
        fm = Engine("hill_climb").solve(
            "SP <= 0.05", LogisticRegression(max_iter=150), train, val,
        )
        assert fm.report.feasible
        assert fm.report.n_rounds == 0  # single-λ path

    def test_hill_climb_warm_lambdas_seed_the_start(self, three_group_splits):
        train, val, _ = three_group_splits
        cold = Engine("hill_climb").solve(
            "SP <= 0.08", LogisticRegression(max_iter=150), train, val,
        )
        warm = Engine(
            "hill_climb", warm_lambdas=tuple(cold.report.lambdas),
        ).solve(
            "SP <= 0.08", LogisticRegression(max_iter=150), train, val,
        )
        # the climb starts at the previous optimum rather than zero ...
        assert np.array_equal(
            warm.report.history[0].lam, cold.report.lambdas
        )
        assert np.asarray(cold.report.history[0].lam).tolist() == [0.0, 0.0, 0.0]
        # ... and converging from the optimum costs no more fits
        assert warm.report.feasible
        assert warm.report.n_fits <= cold.report.n_fits

    @pytest.mark.parametrize("seed", [
        (0.1, 0.2),                      # wrong shape for k=3
        (0.1, float("nan"), 0.2),        # non-finite entry
        ((0.1, 0.2, 0.3), (0.1, 0.2, 0.3)),  # wrong rank
    ])
    def test_hill_climb_malformed_warm_seed_falls_back_cold(
        self, three_group_splits, seed,
    ):
        train, val, _ = three_group_splits
        cold = Engine("hill_climb").solve(
            "SP <= 0.08", LogisticRegression(max_iter=150), train, val,
        )
        fm = Engine("hill_climb", warm_lambdas=seed).solve(
            "SP <= 0.08", LogisticRegression(max_iter=150), train, val,
        )
        # warmth is an optimization, never a correctness dependency: a
        # bad seed silently reproduces the cold trajectory
        assert fm.report.lambdas.tolist() == cold.report.lambdas.tolist()
        assert fm.report.n_fits == cold.report.n_fits
        assert np.asarray(fm.report.history[0].lam).tolist() == [0.0, 0.0, 0.0]

    def test_grid_matches_legacy_shim(self, two_group_splits):
        train, val, _ = two_group_splits
        fm = Engine("grid", grid_max=1.0, grid_steps=10).solve(
            "SP <= 0.05", LogisticRegression(max_iter=150), train, val,
        )
        of = OmniFair(
            LogisticRegression(max_iter=150), FairnessSpec("SP", 0.05),
            search="grid", grid_max=1.0, grid_steps=10,
        ).fit(train, val)
        assert fm.report.lambdas.tolist() == of.lambdas_.tolist()
        assert np.array_equal(
            fm.predict(val.X), of.predict(val.X)
        )
