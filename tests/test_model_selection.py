"""Tests for splitting utilities (the paper's 60/20/20 × 10 protocol)."""

import numpy as np
import pytest

from repro.ml.model_selection import (
    multi_split,
    train_test_split,
    train_val_test_split,
)


class TestTrainTestSplit:
    def test_sizes(self):
        a = np.arange(100)
        tr, te = train_test_split(a, test_size=0.2, seed=0)
        assert len(te) == 20 and len(tr) == 80

    def test_partition_is_disjoint_and_complete(self):
        a = np.arange(50)
        tr, te = train_test_split(a, seed=1)
        assert sorted(np.concatenate([tr, te]).tolist()) == list(range(50))

    def test_multiple_arrays_aligned(self):
        a = np.arange(30)
        b = a * 10
        tr_a, te_a, tr_b, te_b = train_test_split(a, b, seed=2)
        assert np.array_equal(tr_b, tr_a * 10)

    def test_deterministic(self):
        a = np.arange(40)
        tr1, _ = train_test_split(a, seed=3)
        tr2, _ = train_test_split(a, seed=3)
        assert np.array_equal(tr1, tr2)

    def test_different_seeds_differ(self):
        a = np.arange(40)
        tr1, _ = train_test_split(a, seed=3)
        tr2, _ = train_test_split(a, seed=4)
        assert not np.array_equal(tr1, tr2)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="same length"):
            train_test_split(np.arange(3), np.arange(4))

    def test_no_arrays_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            train_test_split()

    def test_stratified_preserves_ratio(self):
        y = np.array([0] * 80 + [1] * 20)
        tr, te = train_test_split(y, test_size=0.5, seed=0, stratify=y)
        assert te.mean() == pytest.approx(0.2, abs=0.06)


class TestTrainValTestSplit:
    def test_default_60_20_20(self):
        tr, va, te = train_val_test_split(1000, seed=0)
        assert (len(tr), len(va), len(te)) == (600, 200, 200)

    def test_partition(self):
        tr, va, te = train_val_test_split(100, seed=5)
        combined = sorted(np.concatenate([tr, va, te]).tolist())
        assert combined == list(range(100))

    def test_invalid_fractions_raise(self):
        with pytest.raises(ValueError, match="invalid fractions"):
            train_val_test_split(10, train=0.8, val=0.3)
        with pytest.raises(ValueError, match="invalid fractions"):
            train_val_test_split(10, train=0.0)


class TestMultiSplit:
    def test_yields_n_splits(self):
        splits = list(multi_split(200, n_splits=10, seed=0))
        assert len(splits) == 10

    def test_splits_are_distinct(self):
        splits = list(multi_split(200, n_splits=3, seed=0))
        assert not np.array_equal(splits[0][0], splits[1][0])

    def test_reproducible(self):
        a = list(multi_split(100, n_splits=2, seed=9))
        b = list(multi_split(100, n_splits=2, seed=9))
        for (t1, v1, s1), (t2, v2, s2) in zip(a, b):
            assert np.array_equal(t1, t2)
            assert np.array_equal(v1, v2)
            assert np.array_equal(s1, s2)
