"""Serving tier: ModelRegistry + MicroBatcher (no HTTP involved).

Concurrency is the point of these tests: the registry is hammered from
many threads (register/get/evict races) and the batcher from many
asyncio tasks, with the invariant that coalesced ``predict_batch``
output is **bit-identical** to per-call ``predict`` regardless of how
requests land on batch boundaries.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.api import FairModel
from repro.core.exceptions import SpecificationError
from repro.datasets import load_scenario
from repro.ml import DecisionTree, GaussianNaiveBayes, LogisticRegression
from repro.serving import MicroBatcher, ModelRegistry, canonical_key


def make_fair_model(seed=0, estimator=None, spec="SP <= 0.1"):
    """A fitted FairModel without a solve: fast and deterministic."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(200, 4))
    y = (X[:, 0] + 0.3 * rng.normal(size=200) > 0).astype(np.int64)
    model = (estimator or GaussianNaiveBayes()).fit(X, y)
    return FairModel(model, spec)


@pytest.fixture(scope="module")
def scenario():
    return load_scenario("group_sweep", n=600, seed=3)


class TestCanonicalKey:
    def test_reordered_and_reformatted_specs_share_a_key(self):
        base = canonical_key("SP <= 0.05 and FNR <= 0.06", "fp")
        assert canonical_key("FNR <= 0.06 and SP <= 0.05", "fp") == base
        assert canonical_key("sp  <=  5e-2 and fnr<=0.06", "fp") == base

    def test_composite_alias_expands_to_the_same_key(self):
        assert canonical_key("EO <= 0.05", "fp") == canonical_key(
            "FPR <= 0.05 and FNR <= 0.05", "fp"
        )

    def test_fingerprint_is_part_of_the_key(self):
        assert canonical_key("SP <= 0.05", "a") != canonical_key(
            "SP <= 0.05", "b"
        )


class TestModelRegistry:
    def test_register_get_roundtrip(self):
        registry = ModelRegistry()
        fair = make_fair_model()
        entry = registry.register("m", fair, dataset_fingerprint="fp")
        assert entry.spec_canonical == "SP <= 0.1"
        assert registry.get("m") is fair
        assert "m" in registry and len(registry) == 1
        assert registry.describe()[0]["estimator"] == "GaussianNaiveBayes"

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="no model named"):
            ModelRegistry().get("ghost")

    def test_non_fairmodel_rejected(self):
        with pytest.raises(SpecificationError, match="FairModel"):
            ModelRegistry().register("m", object())

    def test_lookup_hits_canonical_equivalents_only(self):
        registry = ModelRegistry()
        registry.register(
            "m", make_fair_model(spec="SP <= 0.05 and FNR <= 0.06"),
            dataset_fingerprint="fp",
        )
        assert registry.lookup("fnr <= 6e-2 and SP<=0.05", "fp") == "m"
        assert registry.lookup("SP <= 0.05 and FNR <= 0.06", "other") is None
        assert registry.lookup("SP <= 0.04 and FNR <= 0.06", "fp") is None
        stats = registry.stats()
        assert stats["canonical_lookups"] == 3
        assert stats["canonical_hits"] == 1

    def test_reregister_replaces_and_drops_old_key(self):
        registry = ModelRegistry()
        registry.register("m", make_fair_model(spec="SP <= 0.05"),
                          dataset_fingerprint="fp")
        replacement = make_fair_model(spec="FNR <= 0.07")
        registry.register("m", replacement, dataset_fingerprint="fp")
        assert registry.lookup("SP <= 0.05", "fp") is None
        assert registry.lookup("FNR <= 0.07", "fp") == "m"
        assert registry.get("m") is replacement

    def test_evict_without_store_dir_drops_for_good(self):
        registry = ModelRegistry()
        registry.register("m", make_fair_model())
        assert registry.evict("m") is None
        with pytest.raises(KeyError):
            registry.get("m")
        assert len(registry) == 0

    def test_evict_with_store_dir_spools_and_reloads(self, tmp_path):
        registry = ModelRegistry(store_dir=tmp_path)
        fair = make_fair_model()
        registry.register("m", fair, dataset_fingerprint="fp")
        X = np.random.default_rng(1).normal(size=(20, 4))
        before = fair.predict(X)
        path = registry.evict("m")
        assert path is not None and (tmp_path / "m.fairmodel.pkl").exists()
        assert registry.stats()["spools"] == 1
        reloaded = registry.get("m")  # lazy reload
        assert registry.stats()["reloads"] == 1
        assert np.array_equal(reloaded.predict(X), before)
        # the canonical key survives the evict/reload round-trip
        assert registry.lookup("SP <= 0.1", "fp") == "m"

    def test_save_and_load_explicit_paths(self, tmp_path):
        registry = ModelRegistry()
        registry.register("m", make_fair_model())
        path = registry.save("m", tmp_path / "artifact.pkl")
        other = ModelRegistry()
        entry = other.load("copy", path, dataset_fingerprint="fp")
        assert entry.source == "load"
        assert other.lookup("SP <= 0.1", "fp") == "copy"

    def test_save_without_store_dir_needs_a_path(self):
        registry = ModelRegistry()
        registry.register("m", make_fair_model())
        with pytest.raises(SpecificationError, match="store_dir"):
            registry.save("m")

    def test_max_models_lru_eviction(self, tmp_path):
        registry = ModelRegistry(store_dir=tmp_path, max_models=2)
        for i in range(3):
            registry.register(f"m{i}", make_fair_model(seed=i))
        stats = registry.stats()
        assert stats["resident"] == 2 and stats["models"] == 3
        assert stats["evictions"] == 1
        # the oldest (m0) was spooled, not lost
        assert registry.get("m0") is not None
        assert registry.stats()["reloads"] == 1

    def test_max_models_validated(self):
        with pytest.raises(SpecificationError):
            ModelRegistry(max_models=0)


class TestRegistryRestore:
    """Spool files survive a process restart (ISSUE 7)."""

    def test_restart_restores_spooled_models(self, tmp_path):
        first = ModelRegistry(store_dir=tmp_path)
        fair = make_fair_model()
        first.register("m", fair, dataset_fingerprint="fp")
        first.evict("m")
        X = np.random.default_rng(1).normal(size=(20, 4))
        before = fair.predict(X)

        second = ModelRegistry(store_dir=tmp_path)  # "new process"
        assert second.names() == ["m"]
        assert second.stats()["restored"] == 1
        entry = second.describe()[0]
        assert entry["source"] == "restore"
        assert entry["resident"] is False
        # canonical dedup works again without any re-registration
        assert second.lookup("sp <= 1e-1", "fp") == "m"
        assert np.array_equal(second.get("m").predict(X), before)

    def test_restore_skips_unreadable_spools(self, tmp_path):
        (tmp_path / "bad.fairmodel.pkl").write_bytes(b"rot")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            registry = ModelRegistry(store_dir=tmp_path)
        assert len(registry) == 0

    def test_restore_does_not_clobber_loaded_models(self, tmp_path):
        first = ModelRegistry(store_dir=tmp_path)
        first.register("m", make_fair_model(), dataset_fingerprint="fp")
        first.evict("m")
        second = ModelRegistry(store_dir=tmp_path)
        assert second.stats()["restored"] == 1
        # a fresh register under the same name wins over the spool
        second.register("m", make_fair_model(seed=9))
        assert second.get("m") is not None

    def test_stale_fingerprint_spool_warns_and_misses(self, tmp_path):
        """The regression this PR fixes: a spool file whose recorded
        dataset fingerprint no longer matches the registry's entry must
        not be served — warn, drop the entry, raise KeyError."""
        registry = ModelRegistry(store_dir=tmp_path)
        registry.register("m", make_fair_model(), dataset_fingerprint="old")
        registry.evict("m")
        # the file is replaced out-of-band by a model tuned on other data
        make_fair_model(seed=9).save(
            tmp_path / "m.fairmodel.pkl", dataset_fingerprint="new",
        )
        with pytest.warns(RuntimeWarning, match="fingerprint"):
            with pytest.raises(KeyError, match="stale"):
                registry.get("m")
        assert "m" not in registry
        assert registry.lookup("SP <= 0.1", "old") is None

    def test_unstamped_spool_still_reloads(self, tmp_path):
        """Pre-ISSUE-7 spool files carry no fingerprint: they reload."""
        registry = ModelRegistry(store_dir=tmp_path)
        registry.register("m", make_fair_model(), dataset_fingerprint="fp")
        registry.evict("m")
        make_fair_model().save(tmp_path / "m.fairmodel.pkl")  # no stamp
        assert registry.get("m") is not None


class TestRegistryConcurrency:
    N_THREADS = 8
    OPS_PER_THREAD = 60

    def test_register_get_evict_hammer(self, tmp_path):
        """No lost updates, no crashes, coherent counters under races."""
        registry = ModelRegistry(store_dir=tmp_path)
        names = [f"m{i}" for i in range(4)]
        models = {name: make_fair_model(seed=i)
                  for i, name in enumerate(names)}
        for name, fair in models.items():
            registry.register(name, fair, dataset_fingerprint=name)
        failures = []
        barrier = threading.Barrier(self.N_THREADS)

        def worker(worker_id):
            rng = np.random.default_rng(worker_id)
            barrier.wait()
            try:
                for _ in range(self.OPS_PER_THREAD):
                    name = names[int(rng.integers(len(names)))]
                    op = int(rng.integers(4))
                    if op == 0:
                        registry.register(
                            name, models[name], dataset_fingerprint=name,
                        )
                    elif op == 1:
                        try:
                            registry.get(name)
                        except KeyError:
                            pass  # raced with an unspooled evict
                    elif op == 2:
                        try:
                            registry.evict(name)
                        except KeyError:
                            pass
                    else:
                        registry.lookup("SP <= 0.1", name)
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                failures.append((worker_id, exc))

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        stats = registry.stats()
        assert stats["resident"] <= stats["models"] <= len(names)
        assert stats["canonical_hits"] <= stats["canonical_lookups"]
        # every surviving name still resolves and predicts correctly
        X = np.random.default_rng(9).normal(size=(10, 4))
        for name in registry.names():
            got = registry.get(name).predict(X)
            assert np.array_equal(got, models[name].predict(X))


def run_batched(fair, chunks, **knobs):
    """Submit all chunks concurrently through one MicroBatcher."""

    async def main():
        batcher = MicroBatcher(fair.predict_batch, **knobs)
        await batcher.start()
        try:
            results = await asyncio.gather(
                *(batcher.submit(chunk) for chunk in chunks)
            )
            return results, batcher.stats()
        finally:
            await batcher.close()

    return asyncio.run(main())


class TestMicroBatcher:
    @pytest.mark.parametrize("estimator", [
        GaussianNaiveBayes(),
        DecisionTree(max_depth=3),
        LogisticRegression(max_iter=50),
    ])
    def test_coalesced_output_bit_identical_to_per_call(self, estimator):
        fair = make_fair_model(seed=5, estimator=estimator)
        rng = np.random.default_rng(11)
        chunks = [
            rng.normal(size=(int(rng.integers(1, 7)), 4)) for _ in range(40)
        ]
        results, stats = run_batched(
            fair, chunks, max_batch_size=16, max_wait_us=5000,
        )
        for chunk, got in zip(chunks, results):
            assert got.dtype == np.int64
            assert np.array_equal(got, fair.predict(chunk))
        assert stats["requests"] == len(chunks)
        assert stats["batches"] >= 1

    def test_batch_sizes_respect_the_bound(self):
        fair = make_fair_model(seed=6)
        chunks = [np.zeros((2, 4)) for _ in range(30)]
        _, stats = run_batched(
            fair, chunks, max_batch_size=4, max_wait_us=5000,
        )
        sizes = [int(size) for size in stats["histogram"]]
        assert max(sizes) <= 4
        assert sum(
            size * count for size, count in
            ((int(s), c) for s, c in stats["histogram"].items())
        ) == 30

    def test_unbatched_mode_is_per_request(self):
        fair = make_fair_model(seed=7)
        chunks = [np.zeros((1, 4)) for _ in range(10)]
        results, stats = run_batched(
            fair, chunks, max_batch_size=1, max_wait_us=0,
        )
        assert stats["batches"] == 10
        assert stats["histogram"] == {"1": 10}
        assert stats["coalesced"] == 0
        for got in results:
            assert np.array_equal(got, fair.predict(chunks[0]))

    def test_predict_failure_propagates_to_every_request(self):
        def boom(chunks):
            raise RuntimeError("model exploded")

        async def main():
            batcher = MicroBatcher(boom, max_batch_size=8, max_wait_us=5000)
            await batcher.start()
            try:
                results = await asyncio.gather(
                    *(batcher.submit(np.zeros((1, 4))) for _ in range(5)),
                    return_exceptions=True,
                )
                return results
            finally:
                await batcher.close()

        results = asyncio.run(main())
        assert len(results) == 5
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda c: c, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda c: c, max_wait_us=-1)
        with pytest.raises(ValueError):
            MicroBatcher(lambda c: c, n_workers=0)

    def test_task_storm_from_many_producers(self, scenario):
        """Batch-boundary determinism under a real concurrent storm."""
        fair = make_fair_model(seed=8)
        X = scenario.X[:, :4]
        rng = np.random.default_rng(21)
        starts = rng.integers(0, len(X) - 8, size=120)

        async def main():
            batcher = MicroBatcher(
                fair.predict_batch, max_batch_size=32, max_wait_us=2000,
                n_workers=2,
            )
            await batcher.start()
            try:
                async def one(start):
                    # stagger arrivals so batches form at random cuts
                    await asyncio.sleep(
                        float(rng.integers(0, 4)) / 1e4
                    )
                    return await batcher.submit(X[start:start + 8])

                results = await asyncio.gather(*(one(s) for s in starts))
                return results, batcher.stats()
            finally:
                await batcher.close()

        results, stats = asyncio.run(main())
        for start, got in zip(starts, results):
            assert np.array_equal(got, fair.predict(X[start:start + 8]))
        assert stats["requests"] == len(starts)
