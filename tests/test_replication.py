"""Tests for weight-simulation-by-replication (§1's fallback)."""

import numpy as np
import pytest

from repro.ml import DecisionTree, LogisticRegression
from repro.ml.replication import ReplicationWrapper, replicate_by_weight


class TestReplicateByWeight:
    def test_example_from_paper(self):
        # weights 0.4 / 0.6 -> 2 and 3 copies (the §1 example)
        X = np.array([[1.0], [2.0]])
        y = np.array([0, 1])
        Xr, yr = replicate_by_weight(X, y, [0.4, 0.6], resolution=10)
        counts = {v: int(np.sum(Xr[:, 0] == v)) for v in (1.0, 2.0)}
        assert counts[2.0] / counts[1.0] == pytest.approx(1.5, abs=0.1)

    def test_proportions_approximate_weights(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 2))
        y = rng.integers(0, 2, size=20)
        w = rng.uniform(0.1, 3.0, size=20)
        Xr, yr = replicate_by_weight(X, y, w, resolution=100)
        counts = np.array(
            [np.sum((Xr == X[i]).all(axis=1)) for i in range(20)], dtype=float
        )
        ratios = counts / counts.sum()
        expected = w / w.sum()
        assert np.allclose(ratios, expected, atol=0.01)

    def test_zero_weight_rows_dropped(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([0, 1, 0])
        Xr, _ = replicate_by_weight(X, y, [1.0, 0.0, 1.0])
        assert not np.any(Xr[:, 0] == 2.0)

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            replicate_by_weight(
                np.zeros((2, 1)), np.array([0, 1]), [0.0, 0.0]
            )

    def test_max_rows_cap(self):
        X = np.ones((5, 1))
        y = np.array([0, 1, 0, 1, 0])
        w = np.array([1e-4, 1.0, 1.0, 1.0, 1.0])
        Xr, _ = replicate_by_weight(X, y, w, resolution=100, max_rows=1000)
        assert len(Xr) <= 1000

    def test_uniform_weights_identity_counts(self):
        X = np.arange(6.0).reshape(-1, 1)
        y = np.array([0, 1, 0, 1, 0, 1])
        Xr, yr = replicate_by_weight(X, y, np.ones(6))
        assert len(Xr) == 6


class TestReplicationWrapper:
    def test_wrapper_approximates_native_weighting(self, xy_noisy):
        X, y = xy_noisy
        rng = np.random.default_rng(3)
        w = rng.uniform(0.2, 2.0, size=len(y))
        native = LogisticRegression().fit(X, y, sample_weight=w).predict(X)
        wrapped = ReplicationWrapper(
            LogisticRegression(), resolution=50
        ).fit(X, y, sample_weight=w).predict(X)
        assert np.mean(native == wrapped) > 0.95

    def test_no_weights_passthrough(self, xy_separable):
        X, y = xy_separable
        m = ReplicationWrapper(DecisionTree()).fit(X, y)
        assert m.score(X, y) > 0.9

    def test_clone_clones_inner(self):
        w = ReplicationWrapper(LogisticRegression(l2=0.7))
        c = w.clone()
        assert c.estimator is not w.estimator
        assert c.estimator.l2 == 0.7

    def test_missing_estimator_raises(self):
        with pytest.raises(ValueError, match="inner estimator"):
            ReplicationWrapper().fit(np.zeros((2, 1)), np.array([0, 1]))

    def test_score_delegates(self, xy_separable):
        X, y = xy_separable
        m = ReplicationWrapper(LogisticRegression()).fit(X, y)
        assert 0.0 <= m.score(X, y) <= 1.0
