"""Tests for the from-scratch CMA-ES optimizer."""

import numpy as np

from repro.optim import cmaes_minimize


class TestCMAES:
    def test_sphere_minimum(self):
        result = cmaes_minimize(
            lambda x: float(np.sum(x**2)), np.ones(4) * 3.0,
            sigma0=1.0, max_evals=4000, seed=0,
        )
        assert result.fun < 1e-6
        assert np.allclose(result.x, 0.0, atol=1e-2)

    def test_shifted_quadratic(self):
        target = np.array([1.0, -2.0, 0.5])
        result = cmaes_minimize(
            lambda x: float(np.sum((x - target) ** 2)), np.zeros(3),
            sigma0=0.5, max_evals=4000, seed=1,
        )
        assert np.allclose(result.x, target, atol=0.05)

    def test_rosenbrock_2d(self):
        def rosen(x):
            return float(100 * (x[1] - x[0] ** 2) ** 2 + (1 - x[0]) ** 2)

        result = cmaes_minimize(
            rosen, np.array([-1.0, 1.0]), sigma0=0.5,
            max_evals=8000, seed=2,
        )
        assert result.fun < 1e-3

    def test_respects_eval_budget(self):
        calls = []

        def f(x):
            calls.append(1)
            return float(np.sum(x**2))

        cmaes_minimize(f, np.ones(3), max_evals=200, seed=0, tol=0.0)
        assert len(calls) <= 200 + 12  # at most one extra generation

    def test_deterministic_given_seed(self):
        def f(x):
            return float(np.sum(x**2) + np.sum(np.abs(x)))

        a = cmaes_minimize(f, np.ones(3), max_evals=500, seed=7)
        b = cmaes_minimize(f, np.ones(3), max_evals=500, seed=7)
        assert np.allclose(a.x, b.x)
        assert a.fun == b.fun

    def test_converged_flag_on_flat_objective(self):
        result = cmaes_minimize(lambda x: 0.0, np.zeros(2), max_evals=5000)
        assert result.converged

    def test_custom_popsize(self):
        result = cmaes_minimize(
            lambda x: float(np.sum(x**2)), np.ones(2),
            popsize=20, max_evals=2000, seed=0,
        )
        assert result.fun < 1e-4

    def test_nonconvex_multimodal_finds_good_basin(self):
        # Rastrigin-lite in 2D: global minimum at 0 with local minima around
        def rastrigin(x):
            return float(
                10 * len(x) + np.sum(x**2 - 10 * np.cos(2 * np.pi * x))
            )

        result = cmaes_minimize(
            rastrigin, np.full(2, 0.5), sigma0=0.8, max_evals=6000, seed=3
        )
        assert result.fun < 2.0  # within the central basins
