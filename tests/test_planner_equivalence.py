"""Equivalence goldens: the planner replays the pre-refactor solver loops.

``tests/goldens/trajectories.json`` was frozen from the PR 4 solver
loops (``tune_single_lambda`` / ``hill_climb`` / the grid sweeps /
CMA-ES) *before* they were ported onto the ask/tell planner: for every
strategy × SP/FDR × scenario workload it stores the selected λ vector
and the full ordered λ-sequence of the search history.

These tests assert that every workload, run through the planner on
**each registered execution backend**, reproduces both bit-for-bit —
the ISSUE 5 acceptance criterion.  Speculative backends may fit more
candidates, but what the strategy observes (and therefore selects and
records) must be indistinguishable from the serial reference.

Regenerate after an *intentional* trajectory change with::

    PYTHONPATH=src python tests/capture_trajectories.py
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from capture_trajectories import (  # noqa: E402
    OUT as TRAJECTORY_FILE,
    WORKLOADS,
    run_workload,
)

BACKENDS = ("serial", "thread:2", "process:2")


@pytest.fixture(scope="module")
def golden():
    assert TRAJECTORY_FILE.exists(), (
        "trajectory goldens missing; run "
        "PYTHONPATH=src python tests/capture_trajectories.py"
    )
    return json.loads(TRAJECTORY_FILE.read_text())


@pytest.fixture(scope="module")
def splits_cache():
    return {}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_trajectory_identical(name, backend, golden, splits_cache):
    got = run_workload(name, splits_cache, backend=backend)
    want = golden[name]
    assert got["lambdas"] == want["lambdas"], (
        f"{name} on {backend}: selected λ drifted from the pre-planner "
        f"loop"
    )
    assert got["history_lambdas"] == want["history_lambdas"], (
        f"{name} on {backend}: history λ-sequence drifted from the "
        f"pre-planner loop"
    )


def test_goldens_cover_every_registered_builtin(golden):
    from repro.core.strategies import available_strategies

    covered = {record["strategy"] for record in golden.values()}
    # race is a meta-strategy over the covered components
    assert covered >= set(available_strategies()) - {"race"}
