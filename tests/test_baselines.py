"""Tests for the six baseline fairness methods (Table 1)."""

import numpy as np
import pytest

from repro.baselines import (
    CelisMetaAlgorithm,
    ExponentiatedGradient,
    NoSolutionFoundError,
    NotSupportedError,
    OptimizedPreprocessing,
    Reweighing,
    SeldonianClassifier,
    ZafarFairClassifier,
    reweighing_weights,
    solve_flip_lp,
)
from repro.baselines.agarwal import MixtureClassifier
from repro.baselines.calmon import OptimizedPreprocessing as Calmon
from repro.core.spec import FairnessSpec, bind_specs
from repro.ml import LogisticRegression, RandomForest


def _disparity(method, dataset, metric="SP"):
    constraint = bind_specs([FairnessSpec(metric, 1.0)], dataset)[0]
    return constraint.disparity(dataset.y, method.predict(dataset.X))


class TestReweighing:
    def test_weights_remove_group_label_dependence(self, two_group_data):
        d = two_group_data
        w = reweighing_weights(d.sensitive, d.y, repair_level=1.0)
        # weighted P(y=1 | g) must be equal across groups
        rates = []
        for g in (0, 1):
            mask = d.sensitive == g
            rates.append(
                np.sum(w[mask] * d.y[mask]) / np.sum(w[mask])
            )
        assert rates[0] == pytest.approx(rates[1], abs=1e-10)

    def test_zero_repair_is_uniform(self, two_group_data):
        d = two_group_data
        w = reweighing_weights(d.sensitive, d.y, repair_level=0.0)
        assert np.allclose(w, 1.0)

    def test_invalid_repair_level(self, two_group_data):
        with pytest.raises(ValueError, match="repair_level"):
            reweighing_weights(
                two_group_data.sensitive, two_group_data.y, repair_level=1.5
            )

    def test_reduces_disparity(self, two_group_splits):
        train, val, test = two_group_splits
        base = LogisticRegression(max_iter=200).fit(train.X, train.y)
        constraint = bind_specs([FairnessSpec("SP", 1.0)], test)[0]
        base_disp = abs(constraint.disparity(test.y, base.predict(test.X)))
        m = Reweighing(
            estimator=LogisticRegression(max_iter=200), repair_level=1.0
        ).fit(train)
        assert abs(_disparity(m, test)) < base_disp

    def test_validation_driven_level_selection(self, two_group_splits):
        train, val, _ = two_group_splits
        m = Reweighing(
            estimator=LogisticRegression(max_iter=200), epsilon=0.1
        ).fit(train, val)
        assert 0.0 <= m.repair_level_ <= 1.0

    def test_rejects_unsupported_metric(self, two_group_splits):
        train, val, _ = two_group_splits
        with pytest.raises(NotSupportedError, match="FDR"):
            Reweighing(metric="FDR").fit(train, val)


class TestCalmonLP:
    def test_lp_achieves_target_gap(self, two_group_data):
        d = two_group_data
        flips = solve_flip_lp(d.sensitive, d.y, target_gap=0.0)
        # expected post-flip base rates must match across groups
        rates = []
        for g in (0, 1):
            mask = d.sensitive == g
            beta = d.y[mask].mean()
            p, q = flips[g]
            rates.append(beta * (1 - p) + (1 - beta) * q)
        assert rates[0] == pytest.approx(rates[1], abs=1e-6)

    def test_zero_flips_when_gap_loose(self, two_group_data):
        d = two_group_data
        flips = solve_flip_lp(d.sensitive, d.y, target_gap=0.9)
        total = sum(p + q for p, q in flips.values())
        assert total == pytest.approx(0.0, abs=1e-9)

    def test_dataset_gate_reproduces_na1(self, two_group_splits):
        train, val, _ = two_group_splits  # dataset name "toy2"
        with pytest.raises(NotSupportedError, match="distortion parameters"):
            Calmon().fit(train, val)

    def test_override_gate_and_reduce_bias(self, two_group_splits):
        train, val, test = two_group_splits
        base = LogisticRegression(max_iter=200).fit(train.X, train.y)
        constraint = bind_specs([FairnessSpec("SP", 1.0)], test)[0]
        base_disp = abs(constraint.disparity(test.y, base.predict(test.X)))
        m = OptimizedPreprocessing(
            estimator=LogisticRegression(max_iter=200),
            enforce_dataset_support=False,
        ).fit(train, val)
        assert abs(_disparity(m, test)) < base_disp


class TestZafar:
    def test_reduces_disparity(self, two_group_splits):
        train, val, test = two_group_splits
        base = LogisticRegression(max_iter=200).fit(train.X, train.y)
        constraint = bind_specs([FairnessSpec("SP", 1.0)], test)[0]
        base_disp = abs(constraint.disparity(test.y, base.predict(test.X)))
        m = ZafarFairClassifier(epsilon=0.05).fit(train, val)
        assert abs(_disparity(m, test)) < base_disp

    def test_rejects_tree_models(self, two_group_splits):
        train, val, _ = two_group_splits
        with pytest.raises(NotSupportedError, match="decision-boundary"):
            ZafarFairClassifier(estimator=RandomForest()).fit(train, val)

    def test_accepts_boundary_models(self):
        # LogisticRegression has decision_function: no NA(2)
        ZafarFairClassifier(estimator=LogisticRegression()).check_estimator()

    def test_fnr_variant_runs(self, two_group_splits):
        train, val, test = two_group_splits
        m = ZafarFairClassifier(metric="FNR", epsilon=0.1).fit(train, val)
        assert m.predict(test.X).shape == (len(test),)

    def test_tight_threshold_more_fair_than_loose(self, two_group_splits):
        train, _, test = two_group_splits
        tight = ZafarFairClassifier(covariance_grid=[0.0]).fit(train, None)
        loose = ZafarFairClassifier(covariance_grid=[10.0]).fit(train, None)
        assert abs(_disparity(tight, test)) <= abs(_disparity(loose, test)) + 0.02


class TestCelis:
    def test_supports_fdr(self, two_group_splits):
        train, val, test = two_group_splits
        m = CelisMetaAlgorithm(
            metric="FDR", epsilon=0.1, grid_size=4
        ).fit(train, val)
        assert abs(_disparity(m, val, metric="FDR")) <= 0.1 + 1e-9

    def test_rejects_non_lr_estimator(self, two_group_splits):
        train, val, _ = two_group_splits
        with pytest.raises(NotSupportedError, match="not model-agnostic"):
            CelisMetaAlgorithm(estimator=RandomForest()).fit(train, val)

    def test_infeasible_epsilon_raises_na1(self, two_group_splits):
        # ε=0 under MR parity: even the trivial constant classifiers have
        # group-dependent misclassification rates (the groups' base rates
        # differ), so no dual grid point is feasible -> NA(1)
        train, val, _ = two_group_splits
        with pytest.raises(NotSupportedError, match="NA"):
            CelisMetaAlgorithm(
                metric="MR", epsilon=0.0, grid_size=3
            ).fit(train, val)

    def test_counts_retrains(self, two_group_splits):
        train, val, _ = two_group_splits
        m = CelisMetaAlgorithm(epsilon=0.1, grid_size=3).fit(train, val)
        assert m.n_retrains_ == (2 * 3 + 1) ** 2

    def test_requires_validation_set(self, two_group_splits):
        train, _, _ = two_group_splits
        with pytest.raises(ValueError, match="validation"):
            CelisMetaAlgorithm().fit(train, None)


class TestAgarwal:
    def test_reduces_disparity_sp(self, two_group_splits):
        train, val, test = two_group_splits
        base = LogisticRegression(max_iter=200).fit(train.X, train.y)
        constraint = bind_specs([FairnessSpec("SP", 1.0)], test)[0]
        base_disp = abs(constraint.disparity(test.y, base.predict(test.X)))
        m = ExponentiatedGradient(epsilon=0.05, n_iterations=15).fit(train, val)
        assert abs(_disparity(m, test)) < base_disp

    def test_model_agnostic_with_forest(self, two_group_splits):
        train, val, test = two_group_splits
        m = ExponentiatedGradient(
            estimator=RandomForest(n_estimators=5, max_depth=4),
            epsilon=0.1, n_iterations=5,
        ).fit(train, val)
        assert m.predict(test.X).shape == (len(test),)

    def test_rejects_fdr_moment(self, two_group_splits):
        train, val, _ = two_group_splits
        with pytest.raises(NotSupportedError, match="FDR"):
            ExponentiatedGradient(metric="FDR").fit(train, val)

    def test_fnr_moment_runs(self, two_group_splits):
        train, val, test = two_group_splits
        m = ExponentiatedGradient(
            metric="FNR", epsilon=0.1, n_iterations=8
        ).fit(train, val)
        assert set(np.unique(m.predict(test.X))) <= {0, 1}

    def test_mixture_classifier_averages(self):
        class Stub:
            def __init__(self, value):
                self.value = value

            def predict(self, X):
                return np.full(len(X), self.value)

        mix = MixtureClassifier([Stub(0), Stub(1)])
        proba = mix.predict_proba(np.zeros((3, 1)))
        assert np.allclose(proba[:, 1], 0.5)

    def test_empty_mixture_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            MixtureClassifier([])


class TestSeldonian:
    def test_safety_test_enforced(self, two_group_splits):
        train, val, _ = two_group_splits
        try:
            m = SeldonianClassifier(
                epsilon=0.05, max_evals=1500
            ).fit(train, val)
        except NoSolutionFoundError:
            return  # NSF is a legitimate Seldonian outcome
        assert abs(_disparity(m, val)) <= 0.05 + 1e-9

    def test_rejects_external_estimator(self, two_group_splits):
        train, val, _ = two_group_splits
        with pytest.raises(NotSupportedError, match="NA\\(2\\)"):
            SeldonianClassifier(estimator=LogisticRegression()).fit(train, val)

    def test_impossible_constraint_is_nsf(self, two_group_splits):
        train, val, _ = two_group_splits
        with pytest.raises((NoSolutionFoundError, NotSupportedError)):
            # ε=0 with a barrier too weak to reach exact parity
            SeldonianClassifier(
                epsilon=0.0, max_evals=300, barrier=0.01
            ).fit(train, val)


class TestMethodMetadata:
    @pytest.mark.parametrize(
        "cls, agnostic",
        [
            (Reweighing, True),
            (OptimizedPreprocessing, True),
            (ZafarFairClassifier, False),
            (CelisMetaAlgorithm, False),
            (ExponentiatedGradient, True),
            (SeldonianClassifier, False),
        ],
    )
    def test_model_agnostic_flags_match_table1(self, cls, agnostic):
        assert cls.MODEL_AGNOSTIC is agnostic

    def test_predict_before_fit_raises(self, two_group_data):
        with pytest.raises(RuntimeError, match="not fitted"):
            Reweighing().predict(two_group_data.X)

    def test_stage_labels(self):
        assert Reweighing.STAGE == "preprocessing"
        assert ExponentiatedGradient.STAGE == "in-processing"
