"""Tests for the layered facade: Problem → Engine → FairModel."""

import numpy as np
import pytest

from repro import (
    Engine,
    FairModel,
    FairnessSpec,
    FitReport,
    HistoryPoint,
    OmniFair,
    Problem,
    SpecificationError,
    fit_fair,
)
from repro.core.evaluation import (
    disparity_vector,
    evaluate_model,
    max_violation,
)
from repro.core.spec import bind_specs
from repro.ml import LogisticRegression


class TestProblem:
    def test_from_dsl_string(self):
        p = Problem("SP <= 0.03")
        assert len(p.specs) == 1
        assert p.to_string() == "SP <= 0.03"

    def test_from_spec_objects(self):
        p = Problem([FairnessSpec("SP", 0.03), FairnessSpec("FNR", 0.05)])
        assert p.canonical() == "FNR <= 0.05 and SP <= 0.03"

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError, match="at least one"):
            Problem([])

    def test_coerce_passthrough(self):
        p = Problem("SP <= 0.03")
        assert Problem.coerce(p) is p
        assert isinstance(Problem.coerce("MR <= 0.1"), Problem)

    def test_bind(self, two_group_data):
        constraints = Problem("SP <= 0.05").bind(two_group_data)
        assert len(constraints) == 1


class TestEngineSolve:
    @pytest.fixture(scope="class")
    def solved(self, two_group_splits):
        train, val, _ = two_group_splits
        fm = Engine("auto").solve(
            "SP <= 0.05", LogisticRegression(max_iter=200), train, val,
        )
        return fm, val

    def test_returns_fair_model_with_report(self, solved):
        fm, _ = solved
        assert isinstance(fm, FairModel)
        assert isinstance(fm.report, FitReport)
        assert fm.report.strategy == "binary_search"

    def test_report_shape_is_uniform(self, solved):
        fm, _ = solved
        report = fm.report
        assert report.lambdas.shape == (1,)
        assert report.n_rounds == 0
        assert report.n_fits == len(report.history)
        assert report.constraint_labels == tuple(report.disparities)
        assert isinstance(report.history[0], HistoryPoint)
        assert report.history[0].lam == 0.0

    def test_report_summary_renders(self, solved):
        fm, _ = solved
        text = fm.report.summary()
        assert "binary_search" in text and "lambdas" in text

    def test_raw_arrays_rejected(self, two_group_data):
        with pytest.raises(SpecificationError, match="Dataset"):
            Engine().solve(
                "SP <= 0.05", LogisticRegression(), two_group_data.X,
            )

    def test_auto_validation_split(self, two_group_data):
        fm = Engine().solve(
            "SP <= 0.05", LogisticRegression(max_iter=200), two_group_data,
        )
        assert fm.report.feasible

    def test_multi_constraint_auto(self, three_group_splits):
        train, val, _ = three_group_splits
        fm = Engine().solve(
            "SP <= 0.06", LogisticRegression(max_iter=200), train, val,
        )
        assert fm.report.strategy == "hill_climb"
        assert fm.report.lambdas.shape == (3,)


class TestFairModel:
    def test_audit_matches_evaluate_model(self, two_group_splits):
        train, val, test = two_group_splits
        fm = fit_fair(
            LogisticRegression(max_iter=200), "SP <= 0.05", train, val,
        )
        audit = fm.audit(test)
        constraints = bind_specs(fm.specs, test)
        expected = evaluate_model(fm.model, test.X, test.y, constraints)
        assert audit == expected

    def test_predict_shapes(self, two_group_splits):
        train, val, test = two_group_splits
        fm = fit_fair(
            LogisticRegression(max_iter=200), "SP <= 0.05", train, val,
        )
        assert fm.predict(test.X).shape == (len(test),)
        assert fm.predict_proba(test.X).shape == (len(test), 2)
        assert fm.lambdas.shape == (1,)

    def test_fit_fair_passes_engine_options(self, two_group_splits):
        train, val, _ = two_group_splits
        fm = fit_fair(
            LogisticRegression(max_iter=200), "SP <= 0.05", train, val,
            strategy="grid", grid_steps=8,
        )
        assert fm.report.strategy == "grid"


class TestShimCompat:
    def test_shim_exposes_report_and_fair_model(self, two_group_splits):
        train, val, test = two_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=200), FairnessSpec("SP", 0.05)
        ).fit(train, val)
        assert of.report_ is of.fair_model_.report
        assert of.lambdas_ is of.report_.lambdas
        fm = of.to_fair_model()
        assert np.array_equal(fm.predict(test.X), of.predict(test.X))
        assert of.evaluate(test) == fm.audit(test)

    def test_shim_accepts_dsl_string(self, two_group_splits):
        train, val, _ = two_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=200), "SP <= 0.05"
        ).fit(train, val)
        assert of.feasible_

    def test_history_points_are_named(self, two_group_splits):
        train, val, _ = two_group_splits
        of = OmniFair(
            LogisticRegression(max_iter=200), FairnessSpec("SP", 0.05)
        ).fit(train, val)
        point = of.history_[0]
        assert isinstance(point, HistoryPoint)
        assert point.lam == point[0] == 0.0
        assert point.accuracy == point[2]


class TestEvaluationHelpers:
    def test_max_violation_empty_raises(self):
        y = np.array([0, 1])
        with pytest.raises(SpecificationError, match="at least one"):
            max_violation(y, y, [])

    def test_disparity_vector_exported(self, two_group_data):
        from repro.core import evaluation

        assert "disparity_vector" in evaluation.__all__
        constraints = Problem("SP <= 0.05").bind(two_group_data)
        pred = np.zeros(len(two_group_data), dtype=np.int64)
        vec = disparity_vector(two_group_data.y, pred, constraints)
        assert vec.shape == (1,)


class TestEmptyDatasetGuards:
    def _empty(self):
        from repro.datasets.schema import Dataset

        return Dataset(
            name="empty", X=np.zeros((0, 3)),
            y=np.zeros(0, dtype=np.int64),
            sensitive=np.zeros(0, dtype=np.int64),
            sensitive_attribute="g",
        )

    def test_solve_rejects_zero_row_train(self):
        with pytest.raises(SpecificationError, match="zero rows"):
            Engine("auto").solve(
                "SP <= 0.05", LogisticRegression(), self._empty(),
            )

    def test_solve_rejects_zero_row_val(self, two_group_splits):
        train, _, _ = two_group_splits
        with pytest.raises(SpecificationError, match="zero rows"):
            Engine("auto").solve(
                "SP <= 0.05", LogisticRegression(max_iter=200),
                train, self._empty(),
            )

    def test_audit_rejects_zero_row_dataset(self, two_group_splits):
        train, val, _ = two_group_splits
        fm = fit_fair(
            LogisticRegression(max_iter=200), "SP <= 0.05", train, val,
        )
        with pytest.raises(SpecificationError, match="zero rows"):
            fm.audit(self._empty())


class TestPredictBatch:
    @pytest.fixture(scope="class")
    def fair(self, two_group_splits):
        train, val, _ = two_group_splits
        return fit_fair(
            LogisticRegression(max_iter=200), "SP <= 0.05", train, val,
        )

    def test_coalesced_equals_per_chunk(self, fair, two_group_splits):
        _, _, test = two_group_splits
        chunks = [test.X[:5], test.X[5:6], test.X[6:20]]
        batched = fair.predict_batch(chunks)
        assert len(batched) == 3
        for chunk, got in zip(chunks, batched):
            assert got.shape == (len(chunk),)
            assert np.array_equal(got, fair.predict(chunk))

    def test_empty_list_is_empty(self, fair):
        assert fair.predict_batch([]) == []
