"""Tests for the synthetic benchmark-dataset twins."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    load,
    load_adult,
    load_bank,
    load_compas,
    load_lsac,
    make_biased_dataset,
    two_group_view,
)

ALL_LOADERS = [load_adult, load_compas, load_lsac, load_bank]


@pytest.mark.parametrize("loader", ALL_LOADERS)
class TestLoaders:
    def test_shapes_consistent(self, loader):
        d = loader(n=500, seed=0)
        assert len(d) == 500
        assert d.X.shape[0] == 500
        assert len(d.feature_names) == d.n_features

    def test_deterministic(self, loader):
        a = loader(n=300, seed=5)
        b = loader(n=300, seed=5)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)

    def test_seed_changes_data(self, loader):
        a = loader(n=300, seed=5)
        b = loader(n=300, seed=6)
        assert not np.array_equal(a.X, b.X)

    def test_labels_binary(self, loader):
        d = loader(n=300, seed=0)
        assert set(np.unique(d.y)) <= {0, 1}

    def test_groups_all_present(self, loader):
        d = loader(n=1000, seed=0)
        assert set(np.unique(d.sensitive)) == set(range(d.n_groups))


class TestBiasCalibration:
    def test_adult_male_favoured(self):
        rates = load_adult(n=4000, seed=0).base_rates()
        assert rates["Male"] > rates["Female"] + 0.1

    def test_compas_aa_higher_recidivism(self):
        rates = load_compas(n=4000, seed=0).base_rates()
        assert rates["African-American"] > rates["Caucasian"]
        assert rates["Caucasian"] >= rates["Hispanic"] - 0.05

    def test_lsac_white_higher_pass(self):
        rates = load_lsac(n=4000, seed=0).base_rates()
        assert rates["White"] > rates["Black"] + 0.1

    def test_bank_young_higher_subscription(self):
        rates = load_bank(n=4000, seed=0).base_rates()
        assert rates["young"] > rates["middle"] + 0.05

    def test_compas_group_proportions(self):
        d = load_compas(n=5000, seed=0)
        frac_aa = np.mean(d.sensitive == 0)
        assert frac_aa == pytest.approx(0.51, abs=0.03)


class TestDatasetContainer:
    def test_subset_preserves_alignment(self):
        d = load_adult(n=200, seed=0)
        idx = np.array([3, 5, 7])
        s = d.subset(idx)
        assert np.array_equal(s.y, d.y[idx])
        assert np.array_equal(s.X, d.X[idx])
        assert s.group_names == d.group_names

    def test_group_mask_by_name_and_code(self):
        d = load_adult(n=200, seed=0)
        assert np.array_equal(d.group_mask("Female"), d.group_mask(1))

    def test_group_mask_unknown_raises(self):
        d = load_adult(n=100, seed=0)
        with pytest.raises(KeyError, match="unknown group"):
            d.group_mask("Martian")

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal lengths"):
            Dataset("x", np.zeros((3, 2)), np.zeros(2), np.zeros(3))

    def test_sensitive_code_out_of_range_raises(self):
        with pytest.raises(ValueError, match="exceed"):
            Dataset(
                "x", np.zeros((2, 1)), np.zeros(2), np.array([0, 5]),
                group_names=("a", "b"),
            )


def _extras_dataset(n=6, **extras):
    rng = np.random.default_rng(0)
    return Dataset(
        "x",
        rng.normal(size=(n, 2)),
        rng.integers(0, 2, size=n),
        rng.integers(0, 2, size=n),
        group_names=("a", "b"),
        extras=extras,
    )


class TestSubsetExtras:
    """Regression: per-row extras must follow the rows through subset."""

    def test_per_row_ndarray_is_sliced(self):
        role = np.array([0, 1, 0, 1, 0, 1], dtype=bool)
        s = _extras_dataset(is_val=role).subset(np.array([1, 4, 5]))
        assert np.array_equal(s.extras["is_val"], role[[1, 4, 5]])

    def test_per_row_list_and_tuple_are_sliced_preserving_type(self):
        # the pre-fix behaviour copied these whole, silently misaligning
        # the role in the subset
        d = _extras_dataset(
            tags=["a", "b", "c", "d", "e", "f"],
            weights=(10, 11, 12, 13, 14, 15),
        )
        s = d.subset(np.array([5, 0, 2]))
        assert s.extras["tags"] == ["f", "a", "c"]
        assert s.extras["weights"] == (15, 10, 12)

    def test_boolean_mask_index_slices_extras(self):
        mask = np.array([True, False, True, False, True, False])
        s = _extras_dataset(tags=list("abcdef")).subset(mask)
        assert s.extras["tags"] == ["a", "c", "e"]

    def test_metadata_passes_through_even_at_length_n(self):
        d = _extras_dataset(
            note="abcdef",               # length-n str: metadata
            params={"k": 1},             # dict: metadata
            short=[1, 2],                # wrong length: metadata
            scalar=3.5,
        )
        s = d.subset(np.array([0, 1]))
        assert s.extras == d.extras

    def test_ambiguous_length_n_sequence_raises(self):
        class Weird:
            def __len__(self):
                return 6

        with pytest.raises(TypeError, match="per-row.*metadata"):
            _extras_dataset(odd=Weird()).subset(np.array([0]))


class TestFingerprintV2:
    """Regression: the content hash must see shape, dtype, and roles."""

    def test_reshape_no_longer_collides(self):
        d = _extras_dataset()
        flat = Dataset(
            d.name, d.X.reshape(len(d), -1, 1).reshape(len(d), 2),
            d.y, d.sensitive, group_names=d.group_names,
        )
        wide = Dataset(
            d.name, d.X.reshape(3, 4), d.y[:3], d.sensitive[:3],
            group_names=d.group_names,
        )
        assert flat.fingerprint() != wide.fingerprint()

    def test_extra_dtype_change_with_same_bytes_differs(self):
        # X/y/sensitive are dtype-canonicalized by the constructor, so
        # the dtype frame matters for extras, which are stored as given
        role = np.arange(6, dtype=np.int64)
        a = _extras_dataset(fold=role)
        b = _extras_dataset(fold=role.view(np.uint64))
        assert a.extras["fold"].tobytes() == b.extras["fold"].tobytes()
        assert a.fingerprint() != b.fingerprint()

    def test_per_row_extras_fold_into_hash(self):
        plain = _extras_dataset()
        with_role = _extras_dataset(is_val=np.zeros(6, dtype=bool))
        flipped = _extras_dataset(
            is_val=np.array([1, 0, 0, 0, 0, 0], dtype=bool)
        )
        assert plain.fingerprint() != with_role.fingerprint()
        assert with_role.fingerprint() != flipped.fingerprint()

    def test_per_row_list_extras_fold_into_hash(self):
        a = _extras_dataset(tags=list("abcdef"))
        b = _extras_dataset(tags=list("abcdeg"))
        assert a.fingerprint() != b.fingerprint()

    def test_metadata_extras_stay_outside_hash(self):
        a = _extras_dataset(note="same rows", params={"k": 1})
        b = _extras_dataset(note="different note", params={"k": 2})
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_stable_across_calls(self):
        d = _extras_dataset(is_val=np.zeros(6, dtype=bool))
        assert d.fingerprint() == d.fingerprint()


class TestTwoGroupView:
    def test_filters_and_recodes(self):
        d = load_compas(n=2000, seed=0)
        v = two_group_view(d)
        assert v.group_names == ("African-American", "Caucasian")
        assert set(np.unique(v.sensitive)) == {0, 1}
        assert len(v) < len(d)  # Hispanic rows removed

    def test_base_rates_preserved(self):
        d = load_compas(n=4000, seed=0)
        v = two_group_view(d)
        assert v.base_rates()["African-American"] == pytest.approx(
            d.base_rates()["African-American"]
        )

    def test_custom_pair(self):
        d = load_compas(n=2000, seed=0)
        v = two_group_view(d, keep=("Caucasian", "Hispanic"))
        assert v.group_names == ("Caucasian", "Hispanic")


class TestMakeBiasedDataset:
    def test_validates_proportions(self):
        with pytest.raises(ValueError, match="proportions"):
            make_biased_dataset("x", 100, ("a", "b"), (1.0,), (0.5, 0.5))

    def test_validates_rates(self):
        with pytest.raises(ValueError, match="base_rates"):
            make_biased_dataset("x", 100, ("a", "b"), (1, 1), (0.5, 1.5))

    def test_needs_two_groups(self):
        with pytest.raises(ValueError, match="two groups"):
            make_biased_dataset("x", 100, ("a",), (1.0,), (0.5,))

    def test_sensitive_feature_optional(self):
        with_s = make_biased_dataset(
            "x", 100, ("a", "b"), (1, 1), (0.5, 0.4), seed=0
        )
        without_s = make_biased_dataset(
            "x", 100, ("a", "b"), (1, 1), (0.5, 0.4), seed=0,
            include_sensitive_feature=False,
        )
        assert with_s.n_features == without_s.n_features + 2

    def test_registry_load(self):
        d = load("adult", n=100, seed=1)
        assert d.name == "adult"
        with pytest.raises(KeyError, match="unknown dataset"):
            load("mnist")
