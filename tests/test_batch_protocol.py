"""Batch-protocol conformance suite (ISSUE 3 satellite).

Every estimator advertising ``fit_weighted_batch`` / ``predict_batch``
is run against its serial path on random weighted problems
(hypothesis-backed):

* ``fit_weighted_batch(X, Y, W)[b]`` must equal
  ``clone().fit(X, Y[b], sample_weight=W[b])`` — bit-for-bit for trees,
  within the documented reduction-order tolerance for IRLS logistic
  regression and Gaussian NB (mismatching hard labels are allowed only
  on rows whose serial decision score sits within the tolerance of the
  0.5 boundary);
* ``predict_batch(models, X)[b]`` must match ``models[b].predict(X)``
  under the same rule;
* ``supports_batch_fit`` must gate configurations whose serial
  trajectory has no batched counterpart (lbfgs/gd logistic, legacy
  trees), and the fitter must honor the gate.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fitter import WeightedFitter
from repro.core.spec import Constraint
from repro.core.fairness_metrics import METRIC_FACTORIES
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.tree import DecisionTree

# (factory, decision margin below which a prediction flip is tolerated;
#  0.0 means predictions must match exactly)
BATCH_ESTIMATORS = {
    "nb": (lambda: GaussianNaiveBayes(), 1e-9),
    "logistic_irls": (
        lambda: LogisticRegression(solver="irls", max_iter=60), 1e-9,
    ),
    "tree": (lambda: DecisionTree(max_depth=5), 0.0),
    "tree_subspace": (
        lambda: DecisionTree(
            max_depth=4, max_features=2, min_samples_leaf=3, random_state=3
        ),
        0.0,
    ),
}


@st.composite
def weighted_problems(draw):
    """Random (X, Y, W) batches with flipped labels and spread weights."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(min_value=30, max_value=90))
    d = draw(st.integers(min_value=2, max_value=5))
    B = draw(st.integers(min_value=1, max_value=4))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    if draw(st.booleans()):
        X[:, 0] = np.round(X[:, 0])  # ties exercise split tie-breaks
    y = (X[:, 0] + 0.5 * rng.normal(size=n) > 0).astype(np.int64)
    if y.min() == y.max():
        y[: n // 2] = 1 - y[0]
    W = rng.uniform(0.1, 4.0, size=(B, n))
    Y = np.where(rng.random((B, n)) < 0.15, 1 - y, y)
    return X, Y, W


def _assert_predictions_match(got, want, scores, margin, context):
    """Exact match, except rows the serial model itself finds ambiguous."""
    mismatch = got != want
    if not mismatch.any():
        return
    assert margin > 0.0, f"{context}: exact match required, got mismatches"
    worst = float(np.min(np.abs(scores[mismatch])))
    assert worst <= margin, (
        f"{context}: {int(mismatch.sum())} prediction(s) differ on rows "
        f"with decision margin {worst:.3e} > {margin:.0e}"
    )


class TestConformance:
    @pytest.mark.parametrize("name", sorted(BATCH_ESTIMATORS))
    @settings(max_examples=25, deadline=None)
    @given(problem=weighted_problems())
    def test_batch_fit_matches_serial(self, name, problem):
        factory, margin = BATCH_ESTIMATORS[name]
        X, Y, W = problem
        proto = factory()
        assert proto.supports_batch_fit
        models = proto.fit_weighted_batch(X, Y, W)
        assert len(models) == len(Y)
        for b, model in enumerate(models):
            ref = factory().fit(X, Y[b], sample_weight=W[b])
            scores = ref.predict_proba(X)[:, 1] - 0.5
            _assert_predictions_match(
                model.predict(X), ref.predict(X), scores, margin,
                f"{name}[{b}] fit_weighted_batch",
            )

    @pytest.mark.parametrize("name", sorted(BATCH_ESTIMATORS))
    @settings(max_examples=25, deadline=None)
    @given(problem=weighted_problems())
    def test_predict_batch_matches_serial(self, name, problem):
        factory, margin = BATCH_ESTIMATORS[name]
        X, Y, W = problem
        models = [
            factory().fit(X, Y[b], sample_weight=W[b]) for b in range(len(Y))
        ]
        preds = type(models[0]).predict_batch(models, X)
        assert preds.shape == (len(Y), len(X))
        for b, model in enumerate(models):
            scores = model.predict_proba(X)[:, 1] - 0.5
            _assert_predictions_match(
                preds[b], model.predict(X), scores, margin,
                f"{name}[{b}] predict_batch",
            )

    def test_irls_coefficients_within_documented_tolerance(self):
        rng = np.random.default_rng(11)
        n, d, B = 200, 4, 6
        X = rng.normal(size=(n, d))
        y = (X[:, 0] - X[:, 1] + 0.4 * rng.normal(size=n) > 0).astype(
            np.int64
        )
        W = rng.uniform(0.2, 3.0, size=(B, n))
        Y = np.where(rng.random((B, n)) < 0.1, 1 - y, y)
        proto = LogisticRegression(solver="irls")
        for b, model in enumerate(proto.fit_weighted_batch(X, Y, W)):
            ref = LogisticRegression(solver="irls").fit(
                X, Y[b], sample_weight=W[b]
            )
            np.testing.assert_allclose(
                model.coef_, ref.coef_, rtol=1e-8, atol=1e-10
            )
            np.testing.assert_allclose(
                model.intercept_, ref.intercept_, rtol=1e-8, atol=1e-10
            )
            assert model.n_iter_ == ref.n_iter_

    def test_tree_batch_is_bit_for_bit(self):
        rng = np.random.default_rng(5)
        n = 300
        X = rng.normal(size=(n, 5))
        X[:, 1] = np.round(X[:, 1] * 2) / 2
        y = (X[:, 0] > 0).astype(np.int64)
        W = rng.uniform(0.2, 2.0, size=(4, n))
        Y = np.where(rng.random((4, n)) < 0.1, 1 - y, y)
        # one candidate exercises the zero-weight fallback
        W[2, rng.choice(n, size=20, replace=False)] = 0.0
        proto = DecisionTree(max_depth=6)
        for b, model in enumerate(proto.fit_weighted_batch(X, Y, W)):
            ref = DecisionTree(max_depth=6).fit(X, Y[b], sample_weight=W[b])
            for attr in ("feature_", "threshold_", "left_", "right_",
                         "value_"):
                assert np.array_equal(
                    getattr(model, attr), getattr(ref, attr)
                ), (b, attr)


class TestPresortTieBreaks:
    """Satellite: presorted and legacy builders pick identical splits
    even when gains tie — across features (duplicated columns must both
    resolve to the first candidate in feature order) and within a
    feature (heavily quantized values give equal-gain positions)."""

    def test_duplicated_columns_tie_break_identically(self):
        rng = np.random.default_rng(21)
        n = 400
        base = np.round(rng.normal(size=n) * 2) / 2
        X = np.column_stack([
            base,
            base.copy(),           # exact duplicate: cross-feature ties
            rng.normal(size=n),
        ])
        y = (base + 0.3 * rng.normal(size=n) > 0).astype(np.int64)
        w = rng.uniform(0.5, 1.5, size=n)
        legacy = DecisionTree(max_depth=6, presort=False).fit(
            X, y, sample_weight=w
        )
        fast = DecisionTree(max_depth=6, presort=True).fit(
            X, y, sample_weight=w
        )
        for attr in ("feature_", "threshold_", "left_", "right_", "value_"):
            assert np.array_equal(getattr(legacy, attr), getattr(fast, attr))
        # the duplicate-column tie genuinely occurred and resolved to
        # the first feature in candidate order
        split_feats = legacy.feature_[legacy.feature_ >= 0]
        assert 0 in split_feats and 1 not in split_feats

    def test_quantized_within_feature_ties_break_identically(self):
        rng = np.random.default_rng(22)
        n = 300
        X = rng.integers(0, 4, size=(n, 3)).astype(np.float64)
        y = ((X[:, 0] + X[:, 1] > 3)
             ^ (rng.random(n) < 0.1)).astype(np.int64)
        w = np.ones(n)
        w[rng.choice(n, size=40, replace=False)] = 2.0
        legacy = DecisionTree(max_depth=8, presort=False).fit(
            X, y, sample_weight=w
        )
        fast = DecisionTree(max_depth=8, presort=True).fit(
            X, y, sample_weight=w
        )
        for attr in ("feature_", "threshold_", "left_", "right_", "value_"):
            assert np.array_equal(getattr(legacy, attr), getattr(fast, attr))


class TestGating:
    def _fitter(self, estimator, **kwargs):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(120, 3))
        y = (X[:, 0] > 0).astype(np.int64)
        groups = rng.integers(0, 2, size=120)
        constraint = Constraint(
            metric=METRIC_FACTORIES["SP"](), epsilon=0.05,
            group_names=("a", "b"),
            g1_idx=np.nonzero(groups == 0)[0],
            g2_idx=np.nonzero(groups == 1)[0],
        )
        return WeightedFitter(estimator, X, y, [constraint], **kwargs), X

    def test_unsupported_solver_gates_batch_path(self):
        assert not LogisticRegression(solver="lbfgs").supports_batch_fit
        assert not LogisticRegression(solver="gd").supports_batch_fit
        assert LogisticRegression(solver="irls").supports_batch_fit
        with pytest.raises(ValueError, match="irls"):
            LogisticRegression(solver="lbfgs").fit_weighted_batch(
                np.zeros((4, 2)), np.zeros((1, 4), dtype=int),
                np.ones((1, 4)),
            )

    def test_legacy_tree_gates_batch_path(self):
        assert not DecisionTree(presort=False).supports_batch_fit
        assert DecisionTree().supports_batch_fit

    def test_fitter_honors_gate(self):
        # lbfgs logistic: fit_batch must take the serial path, and its
        # models must equal per-candidate serial fits
        fitter, X = self._fitter(LogisticRegression(max_iter=30))
        L = np.array([[0.0], [0.4]])
        models = fitter.fit_batch(L)
        assert fitter.fit_paths.get("batch_protocol", 0) == 0
        assert fitter.fit_paths.get("serial", 0) == len(L)
        serial, _ = self._fitter(LogisticRegression(max_iter=30))
        for b, model in enumerate(models):
            ref = serial.fit(L[b])
            assert np.array_equal(model.predict(X), ref.predict(X))

    def test_fitter_uses_batch_protocol_when_supported(self):
        fitter, _X = self._fitter(
            LogisticRegression(solver="irls", max_iter=30)
        )
        fitter.fit_batch(np.array([[0.0], [0.4]]))
        assert fitter.fit_paths.get("batch_protocol", 0) == 2
