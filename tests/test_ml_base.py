"""Tests for repro.ml.base: validation helpers and estimator protocol."""

import numpy as np
import pytest

from repro.ml.base import check_sample_weight, check_Xy, clone
from repro.ml.logistic import LogisticRegression


class TestCheckXy:
    def test_converts_lists(self):
        X, y = check_Xy([[1, 2], [3, 4]], [0, 1])
        assert X.dtype == np.float64
        assert y.dtype == np.int64

    def test_reshapes_1d_X(self):
        X, _ = check_Xy([1.0, 2.0, 3.0])
        assert X.shape == (3, 1)

    def test_rejects_3d_X(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_Xy(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_Xy([[np.nan, 1.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_Xy([[np.inf, 1.0]])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="rows but"):
            check_Xy([[1.0], [2.0]], [0])

    def test_rejects_nonbinary_labels(self):
        with pytest.raises(ValueError, match="binary"):
            check_Xy([[1.0], [2.0]], [0, 2])

    def test_rejects_2d_y(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_Xy([[1.0], [2.0]], [[0], [1]])

    def test_none_y_passthrough(self):
        X, y = check_Xy([[1.0]], None)
        assert y is None


class TestCheckSampleWeight:
    def test_none_becomes_uniform(self):
        w = check_sample_weight(None, 5)
        assert np.array_equal(w, np.ones(5))

    def test_valid_weights_pass(self):
        w = check_sample_weight([0.5, 1.5, 0.0], 3)
        assert w.tolist() == [0.5, 1.5, 0.0]

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_sample_weight([1.0, -0.1], 2)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            check_sample_weight([1.0, 1.0], 3)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_sample_weight([np.nan, 1.0], 2)

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError, match="zero"):
            check_sample_weight([0.0, 0.0], 2)


class TestEstimatorProtocol:
    def test_get_params_roundtrip(self):
        m = LogisticRegression(learning_rate=0.2, l2=0.01)
        params = m.get_params()
        assert params["learning_rate"] == 0.2
        assert params["l2"] == 0.01

    def test_set_params_updates(self):
        m = LogisticRegression()
        m.set_params(max_iter=7)
        assert m.max_iter == 7

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="Unknown parameter"):
            LogisticRegression().set_params(bogus=1)

    def test_clone_copies_hyperparameters(self):
        m = LogisticRegression(l2=0.5)
        c = clone(m)
        assert c is not m
        assert c.l2 == 0.5

    def test_clone_is_unfitted(self, xy_separable):
        X, y = xy_separable
        m = LogisticRegression().fit(X, y)
        c = m.clone()
        with pytest.raises(RuntimeError, match="not fitted"):
            c.predict_proba(X)

    def test_score_is_accuracy(self, xy_separable):
        X, y = xy_separable
        m = LogisticRegression().fit(X, y)
        pred = m.predict(X)
        assert m.score(X, y) == pytest.approx(np.mean(pred == y))

    def test_weighted_score(self, xy_separable):
        X, y = xy_separable
        m = LogisticRegression().fit(X, y)
        w = np.ones(len(y))
        assert m.score(X, y, sample_weight=w) == pytest.approx(m.score(X, y))

    def test_predict_before_fit_raises(self, xy_separable):
        X, _ = xy_separable
        with pytest.raises(RuntimeError, match="not fitted"):
            LogisticRegression().predict(X)

    def test_supports_sample_weight_flag(self):
        assert LogisticRegression().supports_sample_weight
