"""Scenario registry: families, parameterization, chunked generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    SCENARIOS,
    Dataset,
    available_scenarios,
    iter_scenario_chunks,
    load,
    load_scenario,
    make_biased_dataset,
    register_scenario,
    scenario_train_val,
)
from repro.datasets.scenarios import GENERATION_BLOCK, Scenario


class TestRegistry:
    def test_builtin_families_registered(self):
        assert {"group_sweep", "imbalance", "label_noise",
                "covariate_shift", "million_row", "drifting_mix",
                "label_drift"} <= set(SCENARIOS)
        assert available_scenarios() == sorted(SCENARIOS)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            load_scenario("nope", n=10)

    def test_unknown_parameter_raises(self):
        with pytest.raises(KeyError, match="no parameter"):
            load_scenario("imbalance", n=100, frobnicate=3)

    def test_register_scenario_rejects_non_scenario(self):
        with pytest.raises(TypeError):
            register_scenario(object())

    def test_register_and_load_custom_family(self):
        def gen(rng, n, p):
            y = rng.integers(0, 2, size=n)
            s = rng.integers(0, 2, size=n)
            X = rng.normal(size=(n, 2))
            return X, y, s, {}

        scenario = Scenario(
            name="_test_family",
            description="registry round-trip",
            generate=gen,
            group_names=("u", "v"),
            n_default=50,
        )
        register_scenario(scenario)
        try:
            data = load_scenario("_test_family")
            assert len(data) == 50
            assert data.group_names == ("u", "v")
        finally:
            SCENARIOS.pop("_test_family")

    def test_million_row_default_size(self):
        # the family defaults to 1e6 rows; unit tests sample it small
        assert SCENARIOS["million_row"].n_default == 1_000_000
        small = load_scenario("million_row", n=4000, seed=0)
        assert len(small) == 4000
        assert small.n_groups == 2

    def test_load_dispatches_scenario_prefix(self):
        via_load = load("scenario:imbalance", n=500, seed=2)
        direct = load_scenario("imbalance", n=500, seed=2)
        assert np.array_equal(via_load.X, direct.X)
        assert np.array_equal(via_load.y, direct.y)
        with pytest.raises(KeyError, match="scenario:"):
            load("not-a-twin")


class TestDeterminismAndChunking:
    @pytest.mark.parametrize("name", sorted(
        n for n in ("group_sweep", "imbalance", "label_noise",
                    "covariate_shift", "million_row", "drifting_mix",
                    "label_drift")
    ))
    def test_seed_determinism(self, name):
        a = load_scenario(name, n=1500, seed=9)
        b = load_scenario(name, n=1500, seed=9)
        c = load_scenario(name, n=1500, seed=10)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)
        assert np.array_equal(a.sensitive, b.sensitive)
        assert not np.array_equal(a.X, c.X)

    @pytest.mark.parametrize("chunk_size", [1_000, 777, GENERATION_BLOCK])
    def test_chunks_concatenate_to_materialized(self, chunk_size):
        n = 5_000
        full = load_scenario("label_noise", n=n, seed=4)
        chunks = list(iter_scenario_chunks(
            "label_noise", n=n, seed=4, chunk_size=chunk_size
        ))
        assert all(isinstance(c, Dataset) for c in chunks)
        sizes = [len(c) for c in chunks]
        assert sum(sizes) == n
        assert max(sizes) <= chunk_size
        assert np.array_equal(np.vstack([c.X for c in chunks]), full.X)
        assert np.array_equal(np.concatenate([c.y for c in chunks]), full.y)
        assert np.array_equal(
            np.concatenate([c.sensitive for c in chunks]), full.sensitive
        )
        # per-row extras stream with the rows
        assert np.array_equal(
            np.concatenate([c.extras["label_flipped"] for c in chunks]),
            full.extras["label_flipped"],
        )
        # chunk offsets describe the materialized view
        starts = [c.extras["chunk_start"] for c in chunks]
        assert starts == list(np.cumsum([0] + sizes[:-1]))

    def test_materialization_spans_generation_blocks(self):
        # more rows than one canonical block: the block seam must be
        # invisible to both the materialized and the chunked views
        n = GENERATION_BLOCK + 321
        full = load_scenario("million_row", n=n, seed=1)
        assert len(full) == n
        chunks = list(iter_scenario_chunks(
            "million_row", n=n, seed=1, chunk_size=50_000
        ))
        assert np.array_equal(np.vstack([c.X for c in chunks]), full.X)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            load_scenario("imbalance", n=0)
        with pytest.raises(ValueError):
            list(iter_scenario_chunks("imbalance", n=100, chunk_size=0))


class TestFamilySemantics:
    def test_group_sweep_group_count_parameter(self):
        data = load_scenario("group_sweep", n=4_000, seed=0, n_groups=6)
        assert data.n_groups == 6
        assert len(data.group_names) == 6
        rates = list(data.base_rates().values())
        # base-rate gradient: first group clearly above the last
        assert rates[0] > rates[-1] + 0.1

    def test_imbalance_rare_positives(self):
        data = load_scenario("imbalance", n=20_000, seed=0)
        assert data.y.mean() < 0.15
        rates = data.base_rates()
        assert rates["A"] > rates["B"]

    def test_label_noise_flip_rate(self):
        data = load_scenario("label_noise", n=20_000, seed=0,
                             noise_rate=0.2)
        flipped = data.extras["label_flipped"]
        assert abs(flipped.mean() - 0.2) < 0.02

    def test_covariate_shift_roles_and_split(self):
        data = load_scenario("covariate_shift", n=20_000, seed=0,
                             shift_delta=1.5, val_fraction=0.3)
        train, val = scenario_train_val(data)
        assert len(train) + len(val) == len(data)
        assert abs(len(val) / len(data) - 0.3) < 0.03
        # validation rows live in a shifted region of feature 0
        assert val.X[:, 0].mean() - train.X[:, 0].mean() > 1.0

    def test_drifting_mix_group_share_follows_schedule(self):
        n = 40_000
        data = load_scenario("drifting_mix", n=n, seed=0, drift_rows=n,
                             prop_start=0.7, prop_end=0.3)
        head = data.sensitive[: n // 4]
        tail = data.sensitive[-n // 4:]
        # group A (code 0) shrinks from ~0.7 toward ~0.3
        assert (head == 0).mean() > 0.6
        assert (tail == 0).mean() < 0.45
        t = data.extras["drift_t"]
        assert t[0] == 0.0 and t[-1] == pytest.approx(1.0, abs=1e-4)
        assert np.all(np.diff(t) >= 0)  # progress is monotone

    def test_label_drift_rates_move_mix_does_not(self):
        n = 40_000
        data = load_scenario("label_drift", n=n, seed=0, drift_rows=n)
        head = data.subset(np.arange(n // 4))
        tail = data.subset(np.arange(n - n // 4, n))
        # concept drift: group A's base rate falls (0.55 → 0.35) ...
        assert (head.base_rates()["A"] - tail.base_rates()["A"]) > 0.1
        # ... while the group mix stays put
        assert abs(
            (head.sensitive == 0).mean() - (tail.sensitive == 0).mean()
        ) < 0.03

    @pytest.mark.parametrize("name", ["drifting_mix", "label_drift"])
    def test_positional_families_are_chunk_invariant(self, name):
        # positional generators receive the block's absolute offset; a
        # bug there would make the stream depend on how it is chunked
        n = GENERATION_BLOCK + 500  # span a block seam
        full = load_scenario(name, n=n, seed=2, drift_rows=n)
        chunks = list(iter_scenario_chunks(
            name, n=n, seed=2, chunk_size=7_777, drift_rows=n,
        ))
        assert np.array_equal(np.vstack([c.X for c in chunks]), full.X)
        assert np.array_equal(np.concatenate([c.y for c in chunks]), full.y)
        assert np.array_equal(
            np.concatenate([c.sensitive for c in chunks]), full.sensitive
        )

    def test_subset_slices_per_row_extras(self):
        # regression: Dataset.subset used to copy extras verbatim, so a
        # subset carried the full-length role arrays and
        # scenario_train_val crashed (or silently mis-split)
        data = load_scenario("covariate_shift", n=4000, seed=0)
        idx = np.arange(0, len(data), 2)
        sub = data.subset(idx)
        assert len(sub.extras["is_val"]) == len(sub)
        assert np.array_equal(sub.extras["is_val"], data.extras["is_val"][idx])
        train, val = scenario_train_val(sub)
        assert len(train) + len(val) == len(sub)
        # scalar metadata is preserved untouched
        assert sub.extras["scenario"] == "covariate_shift"

    def test_families_draw_independent_streams_at_same_seed(self):
        # regression: the block RNG key used to omit the family tag, so
        # every family consumed the identical stream per seed
        a = load_scenario("imbalance", n=2000, seed=0)
        b = load_scenario("label_noise", n=2000, seed=0)
        assert not np.array_equal(a.sensitive, b.sensitive)

    def test_feature_names_match_columns(self):
        for name in ("group_sweep", "imbalance", "million_row"):
            data = load_scenario(name, n=300, seed=0)
            assert len(data.feature_names) == data.n_features
            assert data.feature_names[0] == "num_info_0"

    def test_scenario_train_val_requires_role(self):
        plain = make_biased_dataset(
            "t", n=100, group_names=("a", "b"),
            group_proportions=(0.5, 0.5), group_base_rates=(0.4, 0.5),
        )
        with pytest.raises(KeyError, match="is_val"):
            scenario_train_val(plain)

    def test_scenarios_fit_dataset_schema(self):
        for name in ("group_sweep", "imbalance", "label_noise",
                     "covariate_shift", "million_row"):
            data = load_scenario(name, n=800, seed=3)
            assert isinstance(data, Dataset)
            assert data.name == f"scenario:{name}"
            assert set(np.unique(data.y)) <= {0, 1}
            assert data.sensitive.max() < data.n_groups
            assert data.extras["scenario"] == name
            assert isinstance(data.extras["params"], dict)
