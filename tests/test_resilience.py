"""Resilience primitives: fault plans, deadlines, retries, breakers.

Pure unit tier — no sockets, no solves.  The contract under test
(ISSUE 8):

* a :class:`FaultPlan` is *deterministic*: the same plan (same seed,
  same rules) produces the same fault schedule on every run, including
  through a JSON round-trip, and never depends on global RNG state;
* :class:`Deadline` budgets propagate and expire on an injected clock;
* :class:`RetryPolicy` draws full-jitter backoff from an injected RNG
  (deterministic under test) and only retries its ``retry_on`` set;
* :class:`CircuitBreaker` walks closed → open → half-open → closed with
  exactly one half-open probe admitted at a time.
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.resilience import (
    FAULT_SITES,
    BreakerBoard,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    InjectedFault,
    RetryPolicy,
    active_plan,
    current_plan,
    inject,
)


def _schedule(plan, site, calls):
    """Drive ``site`` ``calls`` times; 1 marks a call that raised."""
    out = []
    with active_plan(plan):
        for _ in range(calls):
            try:
                inject(site)
                out.append(0)
            except Exception as exc:
                assert isinstance(exc, InjectedFault)
                out.append(1)
    return out


class TestFaultPlanDeterminism:
    def test_same_seed_same_schedule(self):
        make = lambda: FaultPlan(  # noqa: E731 - tiny local factory
            [FaultRule("store.get", "raise", p=0.4)], seed=13,
        )
        first = _schedule(make(), "store.get", 50)
        second = _schedule(make(), "store.get", 50)
        assert first == second
        assert 0 < sum(first) < 50

    def test_different_seeds_differ(self):
        plans = [
            FaultPlan([FaultRule("store.get", "raise", p=0.4)], seed=s)
            for s in (1, 2)
        ]
        schedules = [_schedule(plan, "store.get", 60) for plan in plans]
        assert schedules[0] != schedules[1]

    def test_json_roundtrip_preserves_schedule(self):
        plan = FaultPlan(
            [
                FaultRule("store.get", "raise", p=0.3, error="OSError"),
                FaultRule("batcher.predict", "delay", p=0.5, ms=0.0),
            ],
            seed=99,
        )
        clone = FaultPlan.from_dict(
            json.loads(json.dumps(plan.to_dict()))
        )
        assert _schedule(plan, "store.get", 40) == _schedule(
            clone, "store.get", 40,
        )

    def test_schedule_survives_other_sites_interleaved(self):
        # each rule has a private stream: traffic on one site must not
        # shift another site's schedule
        rules = lambda: [  # noqa: E731
            FaultRule("store.get", "raise", p=0.4),
            FaultRule("store.put", "raise", p=0.4),
        ]
        lone = _schedule(FaultPlan(rules(), seed=5), "store.get", 30)
        plan = FaultPlan(rules(), seed=5)
        with active_plan(plan):
            mixed = []
            for _ in range(30):
                try:
                    inject("store.put")
                except Exception:
                    pass
                try:
                    inject("store.get")
                    mixed.append(0)
                except Exception:
                    mixed.append(1)
        assert mixed == lone


class TestFaultRuleGates:
    def test_after_skips_warmup_calls(self):
        plan = FaultPlan(
            [FaultRule("store.get", "raise", after=3)], seed=0,
        )
        assert _schedule(plan, "store.get", 6) == [0, 0, 0, 1, 1, 1]

    def test_every_fires_periodically(self):
        plan = FaultPlan(
            [FaultRule("store.get", "raise", every=3)], seed=0,
        )
        assert _schedule(plan, "store.get", 7) == [1, 0, 0, 1, 0, 0, 1]

    def test_max_fires_caps_activations(self):
        plan = FaultPlan(
            [FaultRule("store.get", "raise", max_fires=2)], seed=0,
        )
        assert _schedule(plan, "store.get", 5) == [1, 1, 0, 0, 0]

    def test_raise_mode_uses_requested_error_class(self):
        plan = FaultPlan(
            [FaultRule("store.get", "raise", error="OSError")], seed=0,
        )
        with active_plan(plan), pytest.raises(OSError) as excinfo:
            inject("store.get")
        assert isinstance(excinfo.value, InjectedFault)
        assert "fault-injection" in str(excinfo.value)

    def test_truncate_chops_the_handed_file(self, tmp_path):
        victim = tmp_path / "blob.bin"
        victim.write_bytes(b"x" * 1000)
        plan = FaultPlan([FaultRule("store.get", "truncate")], seed=0)
        with active_plan(plan):
            inject("store.get", path=victim)
        assert victim.stat().st_size == 500

    def test_truncate_without_path_is_harmless(self):
        plan = FaultPlan([FaultRule("store.get", "truncate")], seed=0)
        with active_plan(plan):
            inject("store.get")  # nothing handed over, nothing chopped

    def test_stats_report_fires_and_calls(self):
        plan = FaultPlan(
            [FaultRule("store.get", "raise", max_fires=2)], seed=0,
        )
        _schedule(plan, "store.get", 5)
        stats = plan.stats()
        assert stats["fired"] == {"store.get:raise": 2}
        assert stats["calls"] == {"store.get": 5}
        assert stats["seed"] == 0


class TestFaultPlanValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule("store.nope", "raise")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultRule("store.get", "explode")

    def test_unknown_error_class_rejected(self):
        with pytest.raises(ValueError, match="unknown error class"):
            FaultRule("store.get", "raise", error="KeyboardInterrupt")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="p must be"):
            FaultRule("store.get", "raise", p=1.5)

    def test_unknown_rule_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            FaultPlan.from_dict({
                "rules": [{"site": "store.get", "mode": "raise",
                           "colour": "red"}],
            })

    def test_sites_catalog_is_closed(self):
        # every documented site parses; nothing else does
        for site in FAULT_SITES:
            FaultRule(site, "delay", ms=0.0)

    def test_env_var_bootstraps_a_plan(self, tmp_path, monkeypatch):
        from repro.resilience import faults

        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 3,
            "rules": [{"site": "store.get", "mode": "raise", "p": 1.0}],
        }))
        monkeypatch.setenv(faults.ENV_VAR, str(path))
        monkeypatch.setattr(faults, "_PLAN", None)
        monkeypatch.setattr(faults, "_ENV_CHECKED", False)
        try:
            with pytest.raises(RuntimeError):
                inject("store.get")
            assert current_plan() is not None
        finally:
            monkeypatch.setattr(faults, "_PLAN", None)
            monkeypatch.setattr(faults, "_ENV_CHECKED", True)


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = _FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.now += 1.5
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired

    def test_check_raises_past_budget(self):
        clock = _FakeClock()
        deadline = Deadline.after_ms(100, clock=clock)
        assert deadline.check("predict") > 0
        clock.now += 0.2
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="predict"):
            deadline.check("predict")

    def test_deadline_exceeded_is_a_timeout(self):
        # so generic TimeoutError handlers (HTTP 504 mapping, retry
        # policies) treat it uniformly
        assert issubclass(DeadlineExceeded, TimeoutError)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)


class TestRetryPolicy:
    def test_seeded_rng_gives_deterministic_delays(self):
        mk = lambda: RetryPolicy(  # noqa: E731
            max_attempts=5, base_s=0.1, cap_s=1.0,
            rng=random.Random(42),
        )
        assert mk().delays() == mk().delays()

    def test_full_jitter_bounds(self):
        policy = RetryPolicy(
            max_attempts=8, base_s=0.1, cap_s=0.5, rng=random.Random(7),
        )
        for attempt in range(7):
            upper = min(0.5, 0.1 * 2 ** attempt)
            for _ in range(20):
                delay = policy.backoff(attempt)
                assert 0.0 <= delay <= upper

    def test_no_jitter_is_monotone_and_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_s=0.05, cap_s=0.4, jitter=False,
        )
        delays = policy.delays()
        assert delays == sorted(delays)
        assert delays[-1] == 0.4
        assert delays[0] == 0.05

    def test_call_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("transient")
            return "ok"

        slept = []
        policy = RetryPolicy(max_attempts=3, rng=random.Random(0))
        assert policy.call(flaky, sleep=slept.append) == "ok"
        assert len(attempts) == 3
        assert len(slept) == 2

    def test_call_gives_up_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=2, rng=random.Random(0))
        with pytest.raises(ConnectionError):
            policy.call(
                lambda: (_ for _ in ()).throw(ConnectionError("down")),
                sleep=lambda _s: None,
            )

    def test_non_retryable_raises_immediately(self):
        attempts = []

        def typed():
            attempts.append(1)
            raise ValueError("not transient")

        policy = RetryPolicy(max_attempts=5, rng=random.Random(0))
        with pytest.raises(ValueError):
            policy.call(typed, sleep=lambda _s: None)
        assert len(attempts) == 1

    def test_deadline_stops_retry_sleeps(self):
        clock = _FakeClock()
        deadline = Deadline.after(0.001, clock=clock)
        policy = RetryPolicy(
            max_attempts=5, base_s=1.0, jitter=False,
        )
        attempts = []

        def failing():
            attempts.append(1)
            raise ConnectionError("down")

        with pytest.raises(ConnectionError):
            policy.call(failing, sleep=lambda _s: None, deadline=deadline)
        assert len(attempts) == 1  # no sleep fits inside the budget

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_s=-0.1)


class TestCircuitBreaker:
    def test_full_cycle_closed_open_halfopen_closed(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0, clock=clock)
        assert breaker.state == "closed"
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(10.0)
        clock.now += 11.0
        assert breaker.state == "half_open"
        assert breaker.allow()       # the probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.opens == 1
        assert breaker.cycles == 1

    def test_half_open_admits_exactly_one_probe(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.now += 6.0
        assert breaker.allow()
        assert not breaker.allow()   # concurrent caller keeps shedding
        breaker.record_success()
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.now += 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert breaker.cycles == 0

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak broke at 2

    def test_stats_shape(self):
        breaker = CircuitBreaker(threshold=4, cooldown_s=7.0)
        stats = breaker.stats()
        assert stats["state"] == "closed"
        assert stats["threshold"] == 4
        assert stats["cooldown_s"] == 7.0
        assert stats["opens"] == 0

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)


class TestBreakerBoard:
    def test_one_breaker_per_name(self):
        board = BreakerBoard(threshold=2, cooldown_s=1.0)
        assert board.get("a") is board.get("a")
        assert board.get("a") is not board.get("b")
        assert len(board) == 2

    def test_stats_key_by_name(self):
        board = BreakerBoard(threshold=1, cooldown_s=60.0)
        board.get("m").record_failure()
        stats = board.stats()
        assert stats["m"]["state"] == "open"


class TestInjectFastPath:
    def test_no_plan_is_a_noop(self):
        # must not raise, must not need env (the suite runs with the
        # plan slot empty)
        if current_plan() is None:
            inject("store.get")

    def test_active_plan_restores_previous(self):
        outer = FaultPlan([], seed=1)
        inner = FaultPlan([], seed=2)
        with active_plan(outer):
            with active_plan(inner):
                assert current_plan() is inner
            assert current_plan() is outer

    def test_delay_mode_actually_sleeps(self):
        plan = FaultPlan(
            [FaultRule("store.get", "delay", ms=30.0, max_fires=1)],
            seed=0,
        )
        with active_plan(plan):
            t0 = time.perf_counter()
            inject("store.get")
            assert time.perf_counter() - t0 >= 0.025
            inject("store.get")  # max_fires spent: no sleep, no raise
