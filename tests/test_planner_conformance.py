"""Ask/tell conformance suite: protocol invariants for every strategy.

Two layers of checks:

* **Plan protocol** — every registered strategy that implements
  ``plan()`` must yield well-formed :class:`CandidateBatch` objects
  (2-D float64 λ matrix with the bound constraint count as trailing
  dimension, valid kind, string purpose) and must produce the same
  result through ``run()`` as through the legacy ``solve()`` surface.
* **Executor contract** — stop predicates end a ``"fit"`` batch at the
  triggering candidate on *every* backend (nothing past it is
  reported; the serial backend does not even fit it), chained batches
  thread ``prev_model`` candidate to candidate, population batches
  report every candidate in order, and speculative pre-fits never
  change ``n_fits`` accounting.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro.core.dsl import parse_spec
from repro.core.executor import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    resolve_backend,
)
from repro.core.fitter import WeightedFitter
from repro.core.planner import CandidateBatch, EvalResult, PlanContext
from repro.core.spec import bind_specs
from repro.core.strategies import (
    SearchStrategy,
    available_strategies,
    get_strategy,
)
from repro.core.exceptions import SpecificationError
from repro.ml import GaussianNaiveBayes

ALL_BACKENDS = ("serial", "thread:2", "process:2")


def _make_fitter(splits, spec="SP <= 0.05", **kwargs):
    train, val, _ = splits
    tc = bind_specs(parse_spec(spec), train)
    vc = bind_specs(parse_spec(spec), val)
    fitter = WeightedFitter(
        GaussianNaiveBayes(), train.X, train.y, tc, **kwargs
    )
    return fitter, vc, val


class _RecordingSerial(SerialBackend):
    """Serial backend that audits every batch it executes."""

    def __init__(self):
        super().__init__()
        self.batches = []

    def run(self, batch, ctx):
        assert isinstance(batch, CandidateBatch)
        assert batch.lambdas.ndim == 2
        assert batch.lambdas.dtype == np.float64
        assert batch.lambdas.shape[0] >= 1
        assert batch.lambdas.shape[1] == ctx.k
        assert batch.kind in ("fit", "population")
        assert isinstance(batch.purpose, str)
        if batch.lookahead is not None:
            assert batch.lookahead.shape[1] == ctx.k
        results = super().run(batch, ctx)
        assert 1 <= len(results) <= len(batch)
        for i, res in enumerate(results):
            assert isinstance(res, EvalResult)
            assert res.lam.shape == (ctx.k,)
            assert res.disparities.shape == (ctx.k,)
            np.testing.assert_array_equal(res.lam, batch.lambdas[i])
            assert res.wall_time_s is not None and res.wall_time_s >= 0
            assert res.batch_id == ctx.next_batch_id
        if batch.stop is not None:
            # nothing may be reported past the stop-triggering candidate
            for res in results[:-1]:
                assert not batch.stop(res)
        self.batches.append(batch)
        return results


PLANNED = [
    name for name in available_strategies()
    if type(get_strategy(name)).plan is not SearchStrategy.plan
]


class TestPlanProtocol:
    def test_every_builtin_is_planner_capable(self):
        for expected in ("binary_search", "linear", "grid", "hill_climb",
                         "cmaes"):
            assert expected in PLANNED

    @pytest.mark.parametrize("name", PLANNED)
    def test_plan_yields_wellformed_batches(self, name, two_group_splits,
                                            three_group_splits):
        strategy = get_strategy(name)
        config = strategy.make_config({})
        splits = two_group_splits
        fitter, vc, val = _make_fitter(splits, "SP <= 0.1")
        backend = _RecordingSerial()
        result = strategy.run(
            fitter, vc, val.X, val.y, config, backend=backend,
        )
        assert backend.batches, "strategy never asked for candidates"
        assert result.feasible
        assert len(result.history) >= 1

    @pytest.mark.parametrize("name", PLANNED)
    def test_run_matches_solve(self, name, two_group_splits):
        strategy = get_strategy(name)
        config = strategy.make_config({})
        f1, vc1, val = _make_fitter(two_group_splits, "SP <= 0.1")
        via_run = strategy.run(f1, vc1, val.X, val.y, config)
        f2, vc2, val = _make_fitter(two_group_splits, "SP <= 0.1")
        via_solve = get_strategy(name).solve(f2, vc2, val.X, val.y, config)
        lam1 = np.atleast_1d(getattr(via_run, "lam", None)
                             if hasattr(via_run, "lam")
                             else via_run.lambdas)
        lam2 = np.atleast_1d(getattr(via_solve, "lam", None)
                             if hasattr(via_solve, "lam")
                             else via_solve.lambdas)
        np.testing.assert_array_equal(lam1, lam2)

    def test_legacy_solve_strategy_rejected_off_serial(self,
                                                       two_group_splits):
        class Legacy(SearchStrategy):
            name = "legacy_tmp"

            def solve(self, fitter, val_constraints, X_val, y_val, config):
                raise AssertionError("should not be reached")

        fitter, vc, val = _make_fitter(two_group_splits)
        with pytest.raises(SpecificationError, match="serial backend"):
            Legacy().run(fitter, vc, val.X, val.y, None, backend="thread")


class TestExecutorContract:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_stop_predicate_honored(self, backend, two_group_splits):
        fitter, vc, val = _make_fitter(two_group_splits)
        ctx = PlanContext(fitter, vc, val.X, val.y)
        backend = resolve_backend(backend)
        backend.bind(ctx)
        grid = np.linspace(0.05, 0.45, 5)[:, None]
        batch = CandidateBatch(
            grid, purpose="ladder",
            stop=lambda res: res.index >= 2,
        )
        results = backend.run(batch, ctx)
        backend.release(ctx)
        assert len(results) == 3
        assert [res.index for res in results] == [0, 1, 2]
        # stop also bounds history: one record per reported candidate
        assert len(ctx.history) == 3

    def test_serial_stop_bounds_fits(self, two_group_splits):
        fitter, vc, val = _make_fitter(two_group_splits)
        ctx = PlanContext(fitter, vc, val.X, val.y)
        batch = CandidateBatch(
            np.linspace(0.05, 0.45, 5)[:, None],
            stop=lambda res: res.index >= 2,
        )
        SerialBackend().run(batch, ctx)
        assert fitter.n_fits == 3  # candidates past the stop never fit

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_population_reports_all(self, backend, two_group_splits):
        fitter, vc, val = _make_fitter(two_group_splits)
        ctx = PlanContext(fitter, vc, val.X, val.y)
        backend = resolve_backend(backend)
        backend.bind(ctx)
        grid = np.linspace(-0.3, 0.3, 7)[:, None]
        results = backend.run(
            CandidateBatch(grid, kind="population"), ctx,
        )
        backend.release(ctx)
        assert len(results) == 7
        np.testing.assert_array_equal(
            np.concatenate([res.lam for res in results]), grid[:, 0],
        )

    def test_speculation_preserves_n_fits(self, two_group_splits):
        lam_serial, lam_spec = [], []
        for backend, sink in (("serial", lam_serial),
                              ("thread:2", lam_spec)):
            fitter, vc, val = _make_fitter(two_group_splits)
            ctx = PlanContext(fitter, vc, val.X, val.y)
            be = resolve_backend(backend)
            be.bind(ctx)
            batch = CandidateBatch(
                np.linspace(0.05, 0.45, 6)[:, None],
                stop=lambda res: res.index >= 3,
            )
            results = be.run(batch, ctx)
            be.release(ctx)
            sink.extend(res.fp for res in results)
            # speculative pre-fits use count_fits=False: the logical
            # budget is identical across backends
            assert fitter.n_fits == 4
        assert lam_serial == lam_spec

    def test_chained_batch_threads_prev_model(self, two_group_splits):
        calls = []
        fitter, vc, val = _make_fitter(two_group_splits)
        original = fitter.fit

        def spy(lambdas, prev_model=None, use_subsample=False):
            model = original(lambdas, prev_model=prev_model,
                             use_subsample=use_subsample)
            calls.append((prev_model, model))
            return model

        fitter.fit = spy
        ctx = PlanContext(fitter, vc, val.X, val.y)
        seed_model = original(np.zeros(1))
        calls.clear()
        SerialBackend().run(
            CandidateBatch([[0.1], [0.2], [0.3]], chain=True,
                           prev_model=seed_model),
            ctx,
        )
        assert calls[0][0] is seed_model
        assert calls[1][0] is calls[0][1]
        assert calls[2][0] is calls[1][1]

    def test_process_unpicklable_falls_back_with_one_warning(
            self, two_group_splits):
        class LocalNB(GaussianNaiveBayes):  # local class: not picklable
            pass

        train, val, _ = two_group_splits
        tc = bind_specs(parse_spec("SP <= 0.1"), train)
        vc = bind_specs(parse_spec("SP <= 0.1"), val)
        fitter = WeightedFitter(LocalNB(), train.X, train.y, tc)
        with pytest.raises(Exception):
            pickle.dumps(fitter.estimator)
        ctx = PlanContext(fitter, vc, val.X, val.y)
        backend = ProcessBackend(n_workers=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend.bind(ctx)
            batch = CandidateBatch(np.linspace(0.05, 0.45, 6)[:, None])
            results = backend.run(batch, ctx)
            backend.release(ctx)
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)
                   and "not picklable" in str(w.message)]
        assert len(runtime) == 1  # one consolidated warning, not per fit
        assert backend.pool_kind is None
        assert len(results) == 6

    def test_backend_registry(self):
        assert {"serial", "thread", "process"} <= set(available_backends())
        assert isinstance(resolve_backend("thread:3"), ThreadBackend)
        assert resolve_backend("thread:3").n_workers == 3
        with pytest.raises(SpecificationError, match="unknown execution"):
            resolve_backend("gpu")
        with pytest.raises(SpecificationError, match="worker count"):
            resolve_backend("process:lots")
