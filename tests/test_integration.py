"""End-to-end integration tests: OmniFair on every model family & metric.

These are the "does the whole system hold together" tests: declarative
spec → weight translation → λ tuning → fair model, for each of the paper's
four ML algorithms, for constant and model-parameterized metrics, for
custom metrics, and for the replication fallback.
"""

import numpy as np
import pytest

from repro import FairnessSpec, OmniFair
from repro.core.fairness_metrics import average_error_cost_parity
from repro.core.grouping import by_predicate
from repro.datasets import load_compas, two_group_view
from repro.ml import (
    GradientBoostedTrees,
    LogisticRegression,
    NeuralNetwork,
    RandomForest,
    ReplicationWrapper,
)
from repro.ml.model_selection import train_val_test_split


@pytest.fixture(scope="module")
def compas_splits():
    data = two_group_view(load_compas(n=1500, seed=3))
    strat = data.sensitive * 2 + data.y
    tr, va, te = train_val_test_split(len(data), seed=3, stratify=strat)
    return data.subset(tr), data.subset(va), data.subset(te)


MODEL_FACTORIES = {
    "LR": lambda: LogisticRegression(max_iter=150),
    "RF": lambda: RandomForest(n_estimators=10, max_depth=5),
    "XGB": lambda: GradientBoostedTrees(n_estimators=15, max_depth=3),
    "NN": lambda: NeuralNetwork(hidden_units=8, max_iter=120),
}


@pytest.mark.parametrize("name", list(MODEL_FACTORIES))
class TestModelAgnosticSP:
    """The paper's headline: any ML algorithm, unchanged, via weights."""

    def test_sp_constraint_satisfied_on_validation(self, name, compas_splits):
        train, val, _ = compas_splits
        of = OmniFair(
            MODEL_FACTORIES[name](), FairnessSpec("SP", 0.05)
        ).fit(train, val)
        assert of.validation_report_["feasible"]

    def test_accuracy_not_destroyed(self, name, compas_splits):
        train, val, test = compas_splits
        of = OmniFair(
            MODEL_FACTORIES[name](), FairnessSpec("SP", 0.05)
        ).fit(train, val)
        base = MODEL_FACTORIES[name]().fit(train.X, train.y)
        base_acc = float(np.mean(base.predict(test.X) == test.y))
        fair_acc = float(np.mean(of.predict(test.X) == test.y))
        assert fair_acc > base_acc - 0.1


class TestMetricsEndToEnd:
    @pytest.mark.parametrize("metric", ["SP", "MR", "FPR", "FNR"])
    def test_constant_weight_metrics(self, metric, compas_splits):
        train, val, _ = compas_splits
        of = OmniFair(
            LogisticRegression(max_iter=150), FairnessSpec(metric, 0.05)
        ).fit(train, val)
        assert of.validation_report_["feasible"]

    @pytest.mark.parametrize("metric", ["FOR", "FDR"])
    def test_parameterized_metrics(self, metric, compas_splits):
        train, val, _ = compas_splits
        of = OmniFair(
            LogisticRegression(max_iter=150), FairnessSpec(metric, 0.05),
            delta=0.02,
        ).fit(train, val)
        assert of.validation_report_["feasible"]

    def test_custom_aec_metric(self, compas_splits):
        """Example 4: average-error-cost parity with asymmetric costs."""
        train, val, _ = compas_splits
        metric = average_error_cost_parity(cost_fp=1.0, cost_fn=2.0)
        of = OmniFair(
            LogisticRegression(max_iter=150), FairnessSpec(metric, 0.05)
        ).fit(train, val)
        assert of.validation_report_["feasible"]


class TestCustomGroupingEndToEnd:
    def test_predicate_groups(self, compas_splits):
        """§4.3: groups defined by arbitrary user logic, not an attribute."""
        train, val, _ = compas_splits
        grouping = by_predicate(
            young=lambda d: d.X[:, 0] < 0.0,
            old=lambda d: d.X[:, 0] >= 0.0,
        )
        of = OmniFair(
            LogisticRegression(max_iter=150),
            FairnessSpec("SP", 0.08, grouping=grouping),
        ).fit(train, val)
        assert of.feasible_


class TestReplicationFallback:
    def test_weightless_learner_via_replication(self, compas_splits):
        """§1: weighting simulated by replication for black boxes without
        a sample_weight parameter."""
        train, val, _ = compas_splits

        class NoWeightLR(LogisticRegression):
            def fit(self, X, y, sample_weight=None):
                if sample_weight is not None:
                    raise TypeError("this learner has no sample_weight")
                return super().fit(X, y)

        wrapped = ReplicationWrapper(
            NoWeightLR(max_iter=150), resolution=20, max_rows=100_000
        )
        of = OmniFair(wrapped, FairnessSpec("SP", 0.06)).fit(train, val)
        assert of.validation_report_["feasible"]


class TestGeneralizationCaveat:
    def test_test_disparity_close_but_not_guaranteed(self, compas_splits):
        """§4 discussion: the model satisfies constraints on D_val; on an
        unseen test set the disparity should be *near* ε but there is no
        guarantee — assert a loose band, not exact satisfaction."""
        train, val, test = compas_splits
        of = OmniFair(
            LogisticRegression(max_iter=150), FairnessSpec("SP", 0.03)
        ).fit(train, val)
        report = of.evaluate(test)
        disparity = abs(list(report["disparities"].values())[0])
        assert disparity <= 0.15  # near ε=0.03, far below the raw 0.22 bias
