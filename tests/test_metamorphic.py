"""Metamorphic properties of fairness metrics and compiled kernels.

Property-based invariances that hold for *any* valid input, independent
of model or data semantics:

* **Row permutation** — disparities, accuracies, and λ-weights are
  functions of (label, prediction, group) multisets, so permuting rows
  consistently changes nothing (bitwise for counts-based paths).
* **Group relabeling** — swapping a constraint's two group sides exactly
  negates its disparity (IEEE subtraction is sign-symmetric), and
  permuting group *codes* with the matching name permutation leaves
  every group's rate unchanged.
* **Row duplication vs doubled weights** — duplicating every row leaves
  all rates exactly unchanged (numerator and denominator both double),
  the λ-weight of each row is preserved to rounding (N and 1/|g| scale
  inversely), and weighted fits with doubled weights equal fits on
  duplicated rows.
* **Prediction complement (SP)** — complementing every prediction
  negates the statistical-parity disparity.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness_metrics import METRIC_FACTORIES
from repro.core.kernels import CompiledConstraints, CompiledEvaluator
from repro.core.spec import Constraint
from repro.core.weights import compute_weights
from repro.ml import GaussianNaiveBayes

BUILTIN = sorted(METRIC_FACTORIES)


@st.composite
def labeled_problems(draw, with_predictions=True):
    """Random (y, pred, groups) with both labels and groups present."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(20, 200))
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    if y.min() == y.max():
        y[: n // 2] = 1 - y[0]
    groups = rng.integers(0, 2, size=n)
    if groups.min() == groups.max():
        groups[: n // 2] = 1 - groups[0]
    pred = rng.integers(0, 2, size=n) if with_predictions else None
    return y, pred, groups, rng


def _constraint(metric_name, groups, epsilon=0.05, swap=False):
    g1 = np.nonzero(groups == 0)[0]
    g2 = np.nonzero(groups == 1)[0]
    if swap:
        g1, g2 = g2, g1
    return Constraint(
        metric=METRIC_FACTORIES[metric_name](),
        epsilon=epsilon,
        group_names=("a", "b") if not swap else ("b", "a"),
        g1_idx=g1,
        g2_idx=g2,
    )


class TestRowPermutation:
    @settings(max_examples=40, deadline=None)
    @given(problem=labeled_problems(), metric=st.sampled_from(BUILTIN))
    def test_disparity_invariant(self, problem, metric):
        y, pred, groups, rng = problem
        perm = rng.permutation(len(y))
        original = _constraint(metric, groups).disparity(y, pred)
        permuted = _constraint(metric, groups[perm]).disparity(
            y[perm], pred[perm]
        )
        assert permuted == original

    @settings(max_examples=40, deadline=None)
    @given(problem=labeled_problems(), metric=st.sampled_from(BUILTIN))
    def test_compiled_evaluator_invariant(self, problem, metric):
        y, pred, groups, rng = problem
        perm = rng.permutation(len(y))
        ev = CompiledEvaluator([_constraint(metric, groups)], y)
        ev_perm = CompiledEvaluator(
            [_constraint(metric, groups[perm])], y[perm]
        )
        assert np.array_equal(
            ev.disparities(pred), ev_perm.disparities(pred[perm])
        )
        assert ev.accuracy(pred) == ev_perm.accuracy(pred[perm])

    @settings(max_examples=25, deadline=None)
    @given(
        problem=labeled_problems(with_predictions=False),
        metric=st.sampled_from(["SP", "MR", "FPR", "FNR"]),
        lam=st.floats(-0.8, 0.8, allow_nan=False),
    )
    def test_weight_kernel_invariant(self, problem, metric, lam):
        y, _, groups, rng = problem
        perm = rng.permutation(len(y))
        w = CompiledConstraints(
            [_constraint(metric, groups)], y
        ).weights([lam])
        w_perm = CompiledConstraints(
            [_constraint(metric, groups[perm])], y[perm]
        ).weights([lam])
        assert np.array_equal(w[perm], w_perm)


class TestGroupRelabeling:
    @settings(max_examples=40, deadline=None)
    @given(problem=labeled_problems(), metric=st.sampled_from(BUILTIN))
    def test_side_swap_negates_disparity_exactly(self, problem, metric):
        y, pred, groups, _ = problem
        forward = _constraint(metric, groups).disparity(y, pred)
        swapped = _constraint(metric, groups, swap=True).disparity(y, pred)
        # IEEE-754: a - b == -(b - a) exactly, for every a, b
        assert swapped == -forward

    @settings(max_examples=40, deadline=None)
    @given(problem=labeled_problems(), metric=st.sampled_from(BUILTIN))
    def test_code_permutation_preserves_disparity(self, problem, metric):
        y, pred, groups, _ = problem
        relabeled = 1 - groups  # permute the group codes
        original = _constraint(metric, groups).disparity(y, pred)
        # with codes flipped, side 0 of the relabeled constraint is the
        # original side 1 — the swap must cancel the code permutation
        mirrored = _constraint(metric, relabeled, swap=True).disparity(
            y, pred
        )
        assert mirrored == original


class TestDuplicationScaling:
    @settings(max_examples=40, deadline=None)
    @given(problem=labeled_problems(), metric=st.sampled_from(BUILTIN))
    def test_row_duplication_preserves_rates_exactly(self, problem, metric):
        y, pred, groups, _ = problem
        dup = np.concatenate([np.arange(len(y))] * 2)
        original = _constraint(metric, groups).disparity(y, pred)
        doubled = _constraint(metric, groups[dup]).disparity(
            y[dup], pred[dup]
        )
        # every numerator and denominator doubles; binary-FP quotients
        # are identical under a shared power-of-two scaling
        assert doubled == original

    @settings(max_examples=25, deadline=None)
    @given(
        problem=labeled_problems(with_predictions=False),
        metric=st.sampled_from(["SP", "MR", "FPR", "FNR"]),
        lam=st.floats(-0.8, 0.8, allow_nan=False),
    )
    def test_duplication_preserves_lambda_weights(self, problem, metric, lam):
        y, _, groups, _ = problem
        n = len(y)
        dup = np.concatenate([np.arange(n)] * 2)
        w = compute_weights(
            n, [_constraint(metric, groups)], [lam], y
        )
        w_dup = compute_weights(
            2 * n, [_constraint(metric, groups[dup])], [lam], y[dup]
        )
        # N doubles while each 1/|g| halves: per-row weights preserved
        np.testing.assert_allclose(w_dup[:n], w, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(w_dup[n:], w, rtol=1e-12, atol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_doubled_weights_equal_duplicated_rows(self, seed):
        rng = np.random.default_rng(seed)
        n = 120
        X = rng.normal(size=(n, 3))
        y = (X[:, 0] > 0).astype(np.int64)
        if y.min() == y.max():
            y[: n // 2] = 1 - y[0]
        w = rng.uniform(0.5, 2.0, size=n)
        dup = np.concatenate([np.arange(n)] * 2)
        doubled = GaussianNaiveBayes().fit(X, y, sample_weight=2.0 * w)
        duplicated = GaussianNaiveBayes().fit(
            X[dup], y[dup], sample_weight=np.concatenate([w, w])
        )
        np.testing.assert_allclose(
            doubled.theta_, duplicated.theta_, rtol=1e-9, atol=1e-12
        )
        np.testing.assert_allclose(
            doubled.var_, duplicated.var_, rtol=1e-9, atol=1e-12
        )
        assert np.array_equal(doubled.predict(X), duplicated.predict(X))


class TestPredictionComplement:
    @settings(max_examples=40, deadline=None)
    @given(problem=labeled_problems())
    def test_sp_disparity_antisymmetric_under_complement(self, problem):
        y, pred, groups, _ = problem
        c = _constraint("SP", groups)
        forward = c.disparity(y, pred)
        complemented = c.disparity(y, 1 - pred)
        # selection rates map r -> 1 - r on both sides, so the disparity
        # negates (up to the rounding of 1 - r)
        assert np.isclose(complemented, -forward, atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(problem=labeled_problems())
    def test_mr_disparity_under_complement_matches_python_path(self, problem):
        # complement symmetry via the compiled evaluator must agree with
        # the reference python path on the same complemented predictions
        y, pred, groups, _ = problem
        c = _constraint("MR", groups)
        ev = CompiledEvaluator([c], y)
        assert (
            ev.disparities(1 - pred)[0] == c.disparity(y, 1 - pred)
        )
