"""Cross-run semantic cache: blob store, solution cache, engine wiring.

Three tiers, mirroring the layering in ``repro.store``:

* ``CacheStore`` — round-trips, atomicity under a thread hammer,
  corruption injection (a damaged blob must warn and read as a miss,
  never crash), and an eviction-order property test;
* ``SolutionCache`` — exact-key canonical equivalence, shape-key
  threshold erasure, and the warm-start index;
* engine/CLI integration — a canonically-equivalent re-solve through a
  fresh Engine spends **0 fits** and returns bit-identical λ, a
  tightened re-solve warm-starts into strictly fewer fits than cold,
  and the CLI ``--store-dir`` round-trip does the same end to end.
"""

import io
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Engine, FairModel, Problem
from repro.cli import main as cli_main
from repro.datasets import load_scenario
from repro.ml import GaussianNaiveBayes
from repro.store import CacheStore, SolutionCache
from repro.store.blob import content_key

KEY_A = content_key("a")
KEY_B = content_key("b")


# -- CacheStore ---------------------------------------------------------------


class TestCacheStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = CacheStore(tmp_path)
        payload = {"w": np.arange(5.0), "label": "x"}
        store.put("fit", KEY_A, payload)
        loaded = store.get("fit", KEY_A)
        assert loaded["label"] == "x"
        np.testing.assert_array_equal(loaded["w"], payload["w"])
        assert store.counters["puts"] == 1
        assert store.counters["hits"] == 1

    def test_miss_returns_default(self, tmp_path):
        store = CacheStore(tmp_path)
        assert store.get("fit", KEY_A) is None
        assert store.get("fit", KEY_A, default=7) == 7
        assert store.counters["misses"] == 2

    def test_namespaces_do_not_collide(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("fit", KEY_A, "fit-side")
        store.put("eval", KEY_A, "eval-side")
        assert store.get("fit", KEY_A) == "fit-side"
        assert store.get("eval", KEY_A) == "eval-side"

    def test_non_hex_keys_rejected(self, tmp_path):
        store = CacheStore(tmp_path)
        with pytest.raises(ValueError, match="hex"):
            store.put("fit", "../escape", "x")
        with pytest.raises(ValueError, match="hex"):
            store.get("fit", "UPPER")

    def test_delete(self, tmp_path):
        store = CacheStore(tmp_path)
        store.put("fit", KEY_A, 1)
        assert store.delete("fit", KEY_A) is True
        assert store.delete("fit", KEY_A) is False
        assert store.get("fit", KEY_A) is None

    def test_stats_counts_blobs_and_bytes(self, tmp_path):
        store = CacheStore(tmp_path, max_bytes=10**9)
        store.put("fit", KEY_A, np.zeros(16))
        store.put("eval", KEY_B, np.zeros(16))
        stats = store.stats()
        assert stats["blobs"] == 2
        assert stats["bytes"] > 0
        assert stats["max_bytes"] == 10**9

    def test_corrupt_blob_warns_and_misses(self, tmp_path):
        store = CacheStore(tmp_path)
        path = store.put("fit", KEY_A, {"ok": True})
        with open(path, "wb") as fh:
            fh.write(b"not a pickle at all")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.get("fit", KEY_A) is None
        assert store.counters["corrupt"] == 1
        # the damaged file was removed: next read is a clean miss
        assert store.get("fit", KEY_A) is None
        assert store.counters["corrupt"] == 1

    def test_truncated_blob_warns_and_misses(self, tmp_path):
        store = CacheStore(tmp_path)
        path = store.put("fit", KEY_A, np.arange(1000.0))
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.get("fit", KEY_A) is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = CacheStore(tmp_path)
        for i in range(10):
            store.put("fit", content_key(str(i)), i)
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_concurrent_writers_and_readers(self, tmp_path):
        """Thread hammer: shared keys, every read sees a complete blob."""
        store = CacheStore(tmp_path)
        keys = [content_key(str(i)) for i in range(8)]
        payloads = {k: np.full(64, i, dtype=np.float64)
                    for i, k in enumerate(keys)}
        errors = []

        def writer():
            for _ in range(15):
                for key in keys:
                    store.put("fit", key, payloads[key])

        def reader():
            for _ in range(30):
                for key in keys:
                    got = store.get("fit", key)
                    if got is None:
                        continue  # not yet written
                    if not np.array_equal(got, payloads[key]):
                        errors.append(f"partial read for {key}")

        threads = (
            [threading.Thread(target=writer) for _ in range(4)]
            + [threading.Thread(target=reader) for _ in range(4)]
        )
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert store.counters["corrupt"] == 0
        for key in keys:
            np.testing.assert_array_equal(
                store.get("fit", key), payloads[key]
            )


class TestCacheStoreEviction:
    def test_over_budget_evicts_oldest_first(self, tmp_path):
        store = CacheStore(tmp_path)
        keys = [content_key(str(i)) for i in range(4)]
        for i, key in enumerate(keys):
            store.put("fit", key, np.zeros(8) + i)
        blob_size = store.stats()["bytes"] // 4
        # budget for two blobs: the two oldest must go
        store.max_bytes = 2 * blob_size + blob_size // 2
        store._evict_over_budget()
        assert store.get("fit", keys[0]) is None
        assert store.get("fit", keys[1]) is None
        assert store.get("fit", keys[2]) is not None
        assert store.get("fit", keys[3]) is not None

    def test_get_refreshes_recency(self, tmp_path):
        store = CacheStore(tmp_path)
        keys = [content_key(str(i)) for i in range(3)]
        for key in keys:
            store.put("fit", key, np.zeros(8))
        store.get("fit", keys[0])  # oldest put, now most recently used
        blob_size = store.stats()["bytes"] // 3
        store.max_bytes = 2 * blob_size + blob_size // 2
        store._evict_over_budget()
        assert store.get("fit", keys[0]) is not None
        assert store.get("fit", keys[1]) is None

    def test_put_never_evicts_its_own_blob(self, tmp_path):
        store = CacheStore(tmp_path, max_bytes=1)
        store.put("fit", KEY_A, np.zeros(64))
        assert store.get("fit", KEY_A) is not None

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(accesses=st.lists(st.integers(min_value=0, max_value=5),
                             min_size=0, max_size=12),
           survivors=st.integers(min_value=1, max_value=5))
    def test_eviction_order_is_lru(self, tmp_path, accesses, survivors):
        """Property: the blobs kept are exactly the most recently used."""
        root = tmp_path / f"p{len(accesses)}-{survivors}"
        store = CacheStore(root)
        keys = [content_key(str(i)) for i in range(6)]
        for key in keys:
            store.put("fit", key, np.zeros(8))
        for i in accesses:
            store.get("fit", keys[i])
        # recency order: puts 0..5, then the access sequence
        order = list(range(6))
        for i in accesses:
            order.remove(i)
            order.append(i)
        expected_kept = set(order[-survivors:])
        blob_size = store.stats()["bytes"] // 6
        store.max_bytes = survivors * blob_size + blob_size // 2
        store._evict_over_budget()
        kept = {
            i for i, key in enumerate(keys)
            if (root / "fit" / key[:2] / (key + ".blob")).is_file()
        }
        assert kept == expected_kept


# -- SolutionCache ------------------------------------------------------------


def desc_for(spec, epsilon, **over):
    desc = {
        "canonical": Problem(spec).canonical(),
        "epsilon": epsilon,
        "train": "tfp", "val": "vfp",
        "estimator": "GaussianNaiveBayes",
        "strategy": "binary_search",
    }
    desc.update(over)
    return desc


class TestSolutionCacheKeys:
    def test_exact_key_is_canonical(self):
        assert SolutionCache.exact_key(desc_for("SP <= 0.08", 0.08)) == \
            SolutionCache.exact_key(desc_for("sp  <=  8e-2", 0.08))

    def test_exact_key_separates_datasets(self):
        a = SolutionCache.exact_key(desc_for("SP <= 0.08", 0.08))
        b = SolutionCache.exact_key(
            desc_for("SP <= 0.08", 0.08, train="other")
        )
        assert a != b

    def test_shape_key_erases_the_threshold(self):
        tight = desc_for("SP <= 0.05", 0.05)
        loose = desc_for("SP <= 0.08", 0.08)
        assert SolutionCache.shape_key(tight) == \
            SolutionCache.shape_key(loose)
        assert SolutionCache.exact_key(tight) != \
            SolutionCache.exact_key(loose)

    def test_multi_constraint_shapes_are_not_indexable(self):
        desc = desc_for("SP <= 0.05 and FNR <= 0.05", None)
        assert SolutionCache.shape_key(desc) is None


class TestSolutionCacheWarmIndex:
    def test_roundtrip_and_tightest_looser_wins(self, tmp_path):
        cache = SolutionCache(CacheStore(tmp_path))
        cache.note_warm(desc_for("SP <= 0.2", 0.2), 0.5, False)
        cache.note_warm(desc_for("SP <= 0.1", 0.1), 1.0, True)
        warm = cache.get_warm(desc_for("SP <= 0.05", 0.05))
        assert warm == {"lambda": 1.0, "swapped": True, "epsilon": 0.1}

    def test_no_looser_epsilon_means_no_warm_start(self, tmp_path):
        cache = SolutionCache(CacheStore(tmp_path))
        cache.note_warm(desc_for("SP <= 0.05", 0.05), 1.0, False)
        # equal: the exact cache's job.  looser request: not bracketed.
        assert cache.get_warm(desc_for("SP <= 0.05", 0.05)) is None
        assert cache.get_warm(desc_for("SP <= 0.2", 0.2)) is None

    def test_foreign_payload_reads_as_miss(self, tmp_path):
        store = CacheStore(tmp_path)
        cache = SolutionCache(store)
        desc = desc_for("SP <= 0.08", 0.08)
        store.put(SolutionCache.EXACT_NS, SolutionCache.exact_key(desc),
                  {"not": "a FairModel"})
        assert cache.get(desc) is None


# -- Engine integration -------------------------------------------------------


@pytest.fixture(scope="module")
def sweep_data():
    return load_scenario("group_sweep", n=600, seed=3)


class TestEngineStore:
    def test_canonical_resolve_is_zero_fits(self, tmp_path, sweep_data):
        cold = Engine("hill_climb", store_dir=tmp_path).solve(
            "SP <= 0.08", GaussianNaiveBayes(), sweep_data,
        )
        assert cold.report.n_fits > 0
        # fresh engine, fresh store object, equivalent spec text
        warm = Engine("hill_climb", store_dir=tmp_path).solve(
            "sp  <=  8e-2", GaussianNaiveBayes(), sweep_data,
        )
        assert warm.report.n_fits == 0
        assert warm.report.fit_paths == {"solution": 1}
        np.testing.assert_array_equal(
            warm.report.lambdas, cold.report.lambdas
        )
        np.testing.assert_array_equal(
            warm.predict(sweep_data.X), cold.predict(sweep_data.X)
        )

    def test_different_epsilon_is_not_an_exact_hit(self, tmp_path,
                                                   sweep_data):
        Engine("hill_climb", store_dir=tmp_path).solve(
            "SP <= 0.08", GaussianNaiveBayes(), sweep_data,
        )
        other = Engine("hill_climb", store_dir=tmp_path).solve(
            "SP <= 0.2", GaussianNaiveBayes(), sweep_data,
        )
        assert other.report.fit_paths.get("solution") is None

    def test_tightened_resolve_warm_starts_with_fewer_fits(self, tmp_path):
        data = load_scenario("imbalance", n=1500, seed=5)

        def solve(epsilon, store_dir):
            return Engine("binary_search", store_dir=store_dir).solve(
                f"SP <= {epsilon}", GaussianNaiveBayes(), data,
            )

        solve(0.08, tmp_path)              # seeds the warm index
        cold = solve(0.05, None)           # reference arm, no store
        warm = solve(0.05, tmp_path)
        assert warm.report.feasible
        assert warm.report.n_fits < cold.report.n_fits
        np.testing.assert_array_equal(
            warm.report.lambdas, cold.report.lambdas
        )

    def test_no_store_changes_nothing(self, tmp_path, sweep_data):
        plain = Engine("hill_climb").solve(
            "SP <= 0.08", GaussianNaiveBayes(), sweep_data,
        )
        stored = Engine("hill_climb", store_dir=tmp_path).solve(
            "SP <= 0.08", GaussianNaiveBayes(), sweep_data,
        )
        np.testing.assert_array_equal(
            plain.report.lambdas, stored.report.lambdas
        )
        assert plain.report.n_fits == stored.report.n_fits

    def test_corrupt_solution_blob_degrades_to_a_solve(self, tmp_path,
                                                       sweep_data):
        Engine("hill_climb", store_dir=tmp_path).solve(
            "SP <= 0.08", GaussianNaiveBayes(), sweep_data,
        )
        for blob in (tmp_path / SolutionCache.EXACT_NS).rglob("*.blob"):
            blob.write_bytes(b"rot")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            again = Engine("hill_climb", store_dir=tmp_path).solve(
                "SP <= 0.08", GaussianNaiveBayes(), sweep_data,
            )
        assert again.report.n_fits > 0
        assert again.report.feasible


class TestCliStore:
    def test_store_dir_second_invocation_is_zero_fits(self, tmp_path):
        argv = [
            "train", "--dataset", "scenario:group_sweep", "--model", "NB",
            "--rows", "600", "--seed", "3", "--spec", "SP <= 0.08",
            "--store-dir", str(tmp_path / "store"),
        ]
        out1 = io.StringIO()
        assert cli_main(argv, out=out1) == 0
        assert "model fits: 0" not in out1.getvalue()

        out2 = io.StringIO()
        argv[10] = "sp  <=  8e-2"  # canonically equivalent rendering
        assert cli_main(argv, out=out2) == 0
        assert "model fits: 0" in out2.getvalue()
        assert "(solution=1)" in out2.getvalue()

        def lambdas(text):
            line = next(ln for ln in text.splitlines()
                        if ln.startswith("lambda(s):"))
            return line.split("  model fits")[0]

        assert lambdas(out1.getvalue()) == lambdas(out2.getvalue())

    def test_no_store_flag_stays_cold(self, tmp_path):
        argv = [
            "train", "--dataset", "scenario:group_sweep", "--model", "NB",
            "--rows", "600", "--seed", "3", "--spec", "SP <= 0.08",
            "--store-dir", str(tmp_path / "store"), "--no-store",
        ]
        assert cli_main(argv, out=io.StringIO()) == 0
        out = io.StringIO()
        assert cli_main(argv, out=out) == 0
        assert "model fits: 0" not in out.getvalue()
        assert not (tmp_path / "store").exists()


class TestFairModelEnvelopeExtra:
    def test_save_stamps_fingerprint_and_load_returns_it(self, tmp_path):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(np.int64)
        fair = FairModel(GaussianNaiveBayes().fit(X, y), "SP <= 0.1")
        path = tmp_path / "m.pkl"
        fair.save(path, dataset_fingerprint="abc123")
        obj, extra = FairModel.load(path, with_extra=True)
        assert isinstance(obj, FairModel)
        assert extra["dataset_fingerprint"] == "abc123"
        # default load path is unchanged
        assert isinstance(FairModel.load(path), FairModel)
