"""Smoke tests for the benchmarks/perf kernel micro-harness."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
HARNESS = REPO_ROOT / "benchmarks" / "perf" / "bench_kernels.py"


def _load_harness():
    spec = importlib.util.spec_from_file_location("bench_kernels", HARNESS)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_kernels"] = module
    spec.loader.exec_module(module)
    return module


def test_quick_synthetic_workload_emits_json(tmp_path):
    harness = _load_harness()
    out = tmp_path / "BENCH_kernels.json"
    rc = harness.main([
        "--workloads", "synthetic_grid",
        "--quick", "--repeats", "1",
        "--out", str(out),
    ])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["schema"] == "bench_kernels/v1"
    entry = report["workloads"]["synthetic_grid"]
    assert entry["strategy"] == "grid"
    assert entry["constraints"] == 3
    assert entry["naive_seconds"] > 0
    assert entry["compiled_seconds"] > 0
    assert entry["selected_lambda_match"] is True
    assert report["summary"]["min_speedup"] == entry["speedup"]


def test_fail_below_gate(tmp_path):
    harness = _load_harness()
    out = tmp_path / "bench.json"
    # an impossible threshold must trip the gate
    rc = harness.main([
        "--workloads", "compas_grid",
        "--quick", "--repeats", "1",
        "--out", str(out),
        "--fail-below", "1e9",
    ])
    assert rc == 1


def test_unknown_workload_is_an_error():
    import pytest

    harness = _load_harness()
    with pytest.raises(SystemExit):
        harness.main(["--workloads", "no_such_workload"])
