"""Property-based tests (hypothesis) on core data structures and invariants.

These complement the per-module unit tests with randomized checks of the
identities the system's correctness rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness_metrics import statistical_parity
from repro.core.spec import Constraint
from repro.core.weights import compute_weights, resolve_negative_weights
from repro.datasets import make_biased_dataset
from repro.ml import DecisionTree, LogisticRegression
from repro.ml.metrics import accuracy_score, roc_auc_score
from repro.ml.model_selection import train_val_test_split
from repro.ml.preprocessing import OneHotEncoder, StandardScaler
from repro.ml.replication import replicate_by_weight


# ---------------------------------------------------------------------------
# substrate invariants
# ---------------------------------------------------------------------------

@given(st.integers(0, 10_000), st.integers(5, 80))
@settings(max_examples=40, deadline=None)
def test_roc_auc_complement_symmetry(seed, n):
    """AUC(y, s) + AUC(y, -s) == 1 (reversing the ranking flips AUC)."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    y[:2] = [0, 1]
    s = rng.random(n)
    auc = roc_auc_score(y, s)
    assert auc + roc_auc_score(y, -s) == pytest.approx(1.0)
    assert 0.0 <= auc <= 1.0


@given(st.integers(0, 10_000), st.integers(3, 40))
@settings(max_examples=30, deadline=None)
def test_scaler_is_affine_invertible(seed, n):
    rng = np.random.default_rng(seed)
    X = rng.normal(scale=rng.uniform(0.5, 5), size=(n, 3)) + rng.normal(size=3)
    scaler = StandardScaler().fit(X)
    assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)


@given(st.integers(0, 10_000), st.integers(4, 40))
@settings(max_examples=30, deadline=None)
def test_onehot_rows_sum_to_one_for_known(seed, n):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 4, size=(n, 2))
    enc = OneHotEncoder().fit(X)
    Z = enc.transform(X)
    assert np.allclose(Z.sum(axis=1), 2.0)  # one hot per column


@given(st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_tree_prediction_probabilities_valid(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, 3))
    y = (X[:, 0] + 0.3 * rng.normal(size=60) > 0).astype(np.int64)
    if len(np.unique(y)) < 2:
        return
    tree = DecisionTree(max_depth=4).fit(X, y)
    proba = tree.predict_proba(X)
    assert np.all((proba >= 0) & (proba <= 1))
    assert np.allclose(proba.sum(axis=1), 1.0)


@given(st.integers(0, 10_000), st.integers(3, 25))
@settings(max_examples=25, deadline=None)
def test_replication_preserves_weight_ratios(seed, n):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = rng.integers(0, 2, size=n)
    w = rng.uniform(0.5, 2.0, size=n)
    Xr, yr = replicate_by_weight(X, y, w, resolution=200)
    counts = np.array(
        [np.sum((Xr == X[i]).all(axis=1)) for i in range(n)], dtype=float
    )
    assert np.allclose(counts / counts.sum(), w / w.sum(), atol=0.02)


# ---------------------------------------------------------------------------
# core identities
# ---------------------------------------------------------------------------

@given(st.integers(0, 10_000), st.floats(-3.0, 3.0))
@settings(max_examples=40, deadline=None)
def test_negative_weight_flip_objective_identity(seed, lam):
    """For ANY prediction vector, the flip transform changes the weighted
    correctness objective by a model-independent constant."""
    rng = np.random.default_rng(seed)
    n = 20
    y = rng.integers(0, 2, size=n)
    perm = rng.permutation(n)
    c = Constraint(
        metric=statistical_parity(),
        epsilon=0.05,
        group_names=("a", "b"),
        g1_idx=perm[: n // 2],
        g2_idx=perm[n // 2 :],
    )
    w = compute_weights(n, [c], [lam], y)
    w2, y2 = resolve_negative_weights(w, y, strategy="flip")
    assert np.all(w2 >= 0)
    diffs = set()
    for _ in range(8):
        pred = rng.integers(0, 2, size=n)
        original = float(np.dot(w, pred == y))
        transformed = float(np.dot(w2, pred == y2))
        diffs.add(round(transformed - original, 9))
    assert len(diffs) == 1  # constant offset


@given(st.integers(0, 50_000))
@settings(max_examples=10, deadline=None)
def test_dataset_generator_bias_direction(seed):
    """Configured base-rate ordering always survives generation."""
    d = make_biased_dataset(
        "p", 800, ("hi", "lo"), (0.5, 0.5), (0.6, 0.3), seed=seed
    )
    rates = d.base_rates()
    assert rates["hi"] > rates["lo"]


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_split_partition_property(seed):
    tr, va, te = train_val_test_split(137, seed=seed)
    combined = np.sort(np.concatenate([tr, va, te]))
    assert np.array_equal(combined, np.arange(137))


# ---------------------------------------------------------------------------
# end-to-end monotone trade-off property (sampled seeds)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1])
def test_lambda_sweep_monotone_disparity(seed):
    """Training-set SP disparity is (noise-tolerantly) non-decreasing in λ
    — the Lemma 2 property Algorithm 1's binary search rests on."""
    from repro.core.fitter import WeightedFitter
    from repro.core.spec import FairnessSpec, bind_specs

    d = make_biased_dataset(
        "m", 700, ("a", "b"), (0.55, 0.45), (0.55, 0.35),
        separation=0.8, seed=seed,
    )
    spec = FairnessSpec("SP", 0.03)
    constraints = bind_specs([spec], d)
    fitter = WeightedFitter(
        LogisticRegression(max_iter=200), d.X, d.y, constraints
    )
    constraint = constraints[0]
    disparities = []
    for lam in np.linspace(-0.4, 0.4, 9):
        model = fitter.fit(np.array([lam]))
        disparities.append(constraint.disparity(d.y, model.predict(d.X)))
    violations = -np.minimum(np.diff(disparities), 0)
    assert violations.max() < 0.03
    assert disparities[-1] > disparities[0]


@pytest.mark.parametrize("seed", [0, 1])
def test_accuracy_weight_tradeoff_consistency(seed):
    """Weighted accuracy at the training optimum is at least the weighted
    accuracy of the unconstrained model under the same weights (the
    learner actually optimizes the weighted objective)."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(300, 4))
    y = (X[:, 0] + rng.normal(scale=0.8, size=300) > 0).astype(np.int64)
    w = rng.uniform(0.2, 3.0, size=300)
    plain = LogisticRegression(max_iter=300).fit(X, y)
    weighted = LogisticRegression(max_iter=300).fit(X, y, sample_weight=w)
    acc_weighted_model = accuracy_score(y, weighted.predict(X), sample_weight=w)
    acc_plain_model = accuracy_score(y, plain.predict(X), sample_weight=w)
    assert acc_weighted_model >= acc_plain_model - 0.02
