"""Tests for declarative fairness metrics (Definition 3, Table 2).

The load-bearing invariant: for every metric, the coefficient form
``Σ c_i·1(pred=y) + c0`` must equal the conventional metric value — that
identity is what makes the weighted-objective translation of §5 valid.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import SpecificationError
from repro.core.fairness_metrics import (
    METRIC_FACTORIES,
    average_error_cost_parity,
    custom_metric,
    false_discovery_rate_parity,
    false_negative_rate_parity,
    false_omission_rate_parity,
    false_positive_rate_parity,
    misclassification_rate_parity,
    statistical_parity,
)
from repro.ml import metrics as mlm

ALL_FACTORIES = [
    statistical_parity,
    misclassification_rate_parity,
    false_positive_rate_parity,
    false_negative_rate_parity,
    false_omission_rate_parity,
    false_discovery_rate_parity,
]


def _labels_and_preds(seed, n=40):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    pred = rng.integers(0, 2, size=n)
    # guarantee both label values and both prediction values appear
    y[:2] = [0, 1]
    pred[:2] = [0, 1]
    return y, pred


@pytest.mark.parametrize("factory", ALL_FACTORIES)
class TestCoefficientIdentity:
    def test_value_matches_coefficient_form(self, factory):
        metric = factory()
        for seed in range(10):
            y, pred = _labels_and_preds(seed)
            assert metric.value_from_coefficients(y, pred) == pytest.approx(
                metric.value(y, pred), abs=1e-12
            )

    def test_coefficient_shape(self, factory):
        metric = factory()
        y, pred = _labels_and_preds(0)
        c, c0 = metric.coefficients(
            y, pred if metric.parameterized_by_model else None
        )
        assert c.shape == y.shape
        assert isinstance(c0, float)


class TestAgainstConventionalMetrics:
    """value() must equal the corresponding repro.ml.metrics function."""

    def test_sp_is_selection_rate(self):
        y, pred = _labels_and_preds(1)
        assert statistical_parity().value(y, pred) == pytest.approx(
            mlm.selection_rate(y, pred)
        )

    def test_mr_is_error_rate(self):
        y, pred = _labels_and_preds(2)
        assert misclassification_rate_parity().value(y, pred) == pytest.approx(
            mlm.error_rate(y, pred)
        )

    def test_fpr(self):
        y, pred = _labels_and_preds(3)
        assert false_positive_rate_parity().value(y, pred) == pytest.approx(
            mlm.false_positive_rate(y, pred)
        )

    def test_fnr(self):
        y, pred = _labels_and_preds(4)
        assert false_negative_rate_parity().value(y, pred) == pytest.approx(
            mlm.false_negative_rate(y, pred)
        )

    def test_for(self):
        y, pred = _labels_and_preds(5)
        assert false_omission_rate_parity().value(y, pred) == pytest.approx(
            mlm.false_omission_rate(y, pred)
        )

    def test_fdr(self):
        y, pred = _labels_and_preds(6)
        assert false_discovery_rate_parity().value(y, pred) == pytest.approx(
            mlm.false_discovery_rate(y, pred)
        )


class TestTable2Coefficients:
    """Spot-check coefficient magnitudes against the paper's Table 2."""

    def test_sp_coefficients(self):
        y = np.array([0, 0, 0, 1])  # |g|=4, #y0=3
        c, c0 = statistical_parity().coefficients(y)
        assert c[3] == pytest.approx(1 / 4)       # y=1 -> +1/|g|
        assert c[0] == pytest.approx(-1 / 4)      # y=0 -> -1/|g|
        assert c0 == pytest.approx(3 / 4)         # #{y=0}/|g|

    def test_mr_coefficients(self):
        y = np.array([0, 1])
        c, c0 = misclassification_rate_parity().coefficients(y)
        assert np.allclose(np.abs(c), 1 / 2)

    def test_fpr_only_touches_negatives(self):
        y = np.array([0, 0, 1, 1, 1])
        c, _ = false_positive_rate_parity().coefficients(y)
        assert np.all(c[y == 1] == 0)
        assert np.allclose(np.abs(c[y == 0]), 1 / 2)

    def test_fnr_only_touches_positives(self):
        y = np.array([0, 0, 1, 1, 1])
        c, _ = false_negative_rate_parity().coefficients(y)
        assert np.all(c[y == 0] == 0)
        assert np.allclose(np.abs(c[y == 1]), 1 / 3)

    def test_for_denominator_is_predicted_negatives(self):
        y = np.array([0, 0, 1, 1])
        pred = np.array([0, 0, 0, 1])  # 3 predicted negatives
        c, _ = false_omission_rate_parity().coefficients(y, pred)
        assert np.allclose(np.abs(c[y == 0]), 1 / 3)

    def test_fdr_denominator_is_predicted_positives(self):
        y = np.array([0, 0, 1, 1])
        pred = np.array([1, 0, 1, 1])  # 3 predicted positives
        c, _ = false_discovery_rate_parity().coefficients(y, pred)
        assert np.allclose(np.abs(c[y == 1]), 1 / 3)


class TestParameterizedFlag:
    def test_for_fdr_parameterized(self):
        assert false_omission_rate_parity().parameterized_by_model
        assert false_discovery_rate_parity().parameterized_by_model

    def test_constant_metrics_not_parameterized(self):
        assert not statistical_parity().parameterized_by_model
        assert not misclassification_rate_parity().parameterized_by_model

    def test_parameterized_requires_predictions(self):
        with pytest.raises(SpecificationError, match="predictions"):
            false_discovery_rate_parity().coefficients(np.array([0, 1]))


class TestDegenerateGroups:
    def test_fdr_no_predicted_positives(self):
        y = np.array([0, 1])
        pred = np.array([0, 0])
        metric = false_discovery_rate_parity()
        assert metric.value_from_coefficients(y, pred) == pytest.approx(
            metric.value(y, pred)
        )

    def test_fpr_no_negatives_in_group(self):
        y = np.array([1, 1])
        pred = np.array([0, 1])
        metric = false_positive_rate_parity()
        assert metric.value_from_coefficients(y, pred) == pytest.approx(
            metric.value(y, pred)
        )


class TestAverageErrorCost:
    def test_identity_holds(self):
        metric = average_error_cost_parity(cost_fp=2.0, cost_fn=5.0)
        for seed in range(5):
            y, pred = _labels_and_preds(seed)
            assert metric.value_from_coefficients(y, pred) == pytest.approx(
                metric.value(y, pred), abs=1e-12
            )

    def test_matches_ml_metric(self):
        y, pred = _labels_and_preds(7)
        metric = average_error_cost_parity(cost_fp=3.0, cost_fn=1.0)
        assert metric.value(y, pred) == pytest.approx(
            mlm.average_error_cost(y, pred, cost_fp=3.0, cost_fn=1.0)
        )

    def test_negative_cost_rejected(self):
        with pytest.raises(SpecificationError, match="non-negative"):
            average_error_cost_parity(cost_fp=-1.0)


class TestCustomMetric:
    def test_custom_callables_wired(self):
        metric = custom_metric(
            "always-half",
            coefficients=lambda y, p: (np.zeros(len(y)), 0.5),
            rate=lambda y, p: 0.5,
        )
        y, pred = _labels_and_preds(8)
        assert metric.value(y, pred) == 0.5
        assert metric.value_from_coefficients(y, pred) == 0.5

    def test_bad_coefficient_shape_rejected(self):
        metric = custom_metric(
            "bad",
            coefficients=lambda y, p: (np.zeros(3), 0.0),
            rate=lambda y, p: 0.0,
        )
        with pytest.raises(SpecificationError, match="shape"):
            metric.coefficients(np.array([0, 1]))


@given(st.integers(min_value=0, max_value=10_000), st.integers(2, 60))
@settings(max_examples=60, deadline=None)
def test_identity_property_all_metrics(seed, n):
    """Property: coefficient form == conventional value for random data."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    pred = rng.integers(0, 2, size=n)
    for factory in ALL_FACTORIES + [
        lambda: average_error_cost_parity(2.0, 0.5)
    ]:
        metric = factory()
        assert metric.value_from_coefficients(y, pred) == pytest.approx(
            metric.value(y, pred), abs=1e-10
        )
