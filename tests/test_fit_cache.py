"""Fit/eval memoization caches and batch-path bookkeeping (ISSUE 3).

Covers the :class:`~repro.core.fitter.WeightedFitter` fit cache (keyed
on resolved weight/label vectors), the
:class:`~repro.core.kernels.CompiledEvaluator` prediction-score cache,
the one-time warm-start batch-bypass warning, the process-pool
invalidation on training-matrix changes, and the FitReport/CLI plumbing
of the hit counters.
"""

from __future__ import annotations

import io
import warnings

import numpy as np
import pytest

from repro.api import Engine, Problem
from repro.cli import main
from repro.core.fairness_metrics import METRIC_FACTORIES
from repro.core.fitter import WeightedFitter
from repro.core.kernels import CompiledEvaluator
from repro.core.spec import Constraint
from repro.datasets.synthetic import make_biased_dataset
from repro.ml.logistic import LogisticRegression
from repro.ml.model_selection import train_val_test_split
from repro.ml.naive_bayes import GaussianNaiveBayes


def _setup(seed=0, n=240):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] + 0.5 * rng.normal(size=n) > 0).astype(np.int64)
    groups = rng.integers(0, 2, size=n)
    constraints = [
        Constraint(
            metric=METRIC_FACTORIES[name](), epsilon=eps,
            group_names=("a", "b"),
            g1_idx=np.nonzero(groups == 0)[0],
            g2_idx=np.nonzero(groups == 1)[0],
        )
        for name, eps in (("SP", 0.05), ("MR", 0.1))
    ]
    return X, y, constraints


class TestFitCache:
    def test_repeated_lambda_hits_and_returns_same_model(self):
        X, y, constraints = _setup()
        fitter = WeightedFitter(GaussianNaiveBayes(), X, y, constraints)
        lam = np.array([0.7, -0.3])
        first = fitter.fit(lam)
        assert fitter.fit_cache_hits == 0
        again = fitter.fit(lam)
        assert again is first
        assert fitter.fit_cache_hits == 1
        assert fitter.n_fits == 2  # logical fits keep counting

    def test_batch_dedupes_duplicates_within_and_across_calls(self):
        X, y, constraints = _setup()
        fitter = WeightedFitter(GaussianNaiveBayes(), X, y, constraints)
        L = np.array([[0.0, 0.0], [0.5, -0.5], [0.0, 0.0], [0.5, -0.5]])
        models = fitter.fit_batch(L)
        assert fitter.fit_cache_hits == 2          # in-batch duplicates
        assert models[0] is models[2]
        assert models[1] is models[3]
        assert fitter.n_fits == 4
        # the whole grid again: every candidate is a cross-call hit
        again = fitter.fit_batch(L)
        assert fitter.fit_cache_hits == 6
        assert again[1] is models[1]
        # cached batch results equal fresh uncached fits
        fresh = WeightedFitter(
            GaussianNaiveBayes(), X, y, constraints, fit_cache=False
        )
        for b, model in enumerate(fresh.fit_batch(L)):
            assert np.array_equal(models[b].predict(X), model.predict(X))
        assert fresh.fit_cache_hits == 0
        assert fresh.fit_cache_lookups == 0

    def test_serial_and_batch_paths_share_the_cache(self):
        X, y, constraints = _setup()
        fitter = WeightedFitter(GaussianNaiveBayes(), X, y, constraints)
        model = fitter.fit(np.array([0.25, 0.1]))
        batch = fitter.fit_batch(
            np.array([[0.25, 0.1], [1.0, 0.0]])
        )
        assert batch[0] is model
        assert fitter.fit_cache_hits == 1

    def test_estimator_param_change_invalidates(self):
        X, y, constraints = _setup()
        fitter = WeightedFitter(
            LogisticRegression(max_iter=25), X, y, constraints
        )
        lam = np.array([0.4, 0.0])
        fitter.fit(lam)
        fitter.estimator.set_params(max_iter=26)
        fitter.fit(lam)
        assert fitter.fit_cache_hits == 0
        assert fitter.n_fits == 2

    def test_warm_start_disables_cache(self):
        X, y, constraints = _setup()
        fitter = WeightedFitter(
            LogisticRegression(max_iter=25), X, y, constraints,
            warm_start=True,
        )
        assert not fitter.fit_cache
        lam = np.array([0.4, 0.0])
        a = fitter.fit(lam)
        b = fitter.fit(lam)
        assert a is not b
        assert fitter.fit_cache_lookups == 0

    def test_cache_is_bounded_with_lru_eviction(self, monkeypatch):
        import repro.core.fitter as fitter_mod

        monkeypatch.setattr(fitter_mod, "FIT_CACHE_MAX", 4)
        X, y, constraints = _setup()
        fitter = WeightedFitter(GaussianNaiveBayes(), X, y, constraints)
        L = np.column_stack([np.linspace(0.1, 1.0, 10), np.zeros(10)])
        fitter.fit_batch(L)
        assert len(fitter._fit_cache) == 4
        # the newest entries survive, the oldest were evicted
        fitter.fit_batch(L[-2:])
        assert fitter.fit_cache_hits == 2
        fitter.fit_batch(L[:1])
        assert fitter.fit_cache_hits == 2  # evicted -> refit, not a hit

    def test_subsample_and_full_fits_do_not_collide(self):
        X, y, constraints = _setup()
        fitter = WeightedFitter(
            GaussianNaiveBayes(), X, y, constraints, subsample=0.5,
        )
        # Λ = 0 resolves to all-ones weights on both splits; the split
        # tag must keep the keys apart
        full = fitter.fit(np.zeros(2))
        sub = fitter.fit(np.zeros(2), use_subsample=True)
        assert fitter.fit_cache_hits == 0
        assert not np.array_equal(full.theta_, sub.theta_)


class TestEvalCache:
    def test_score_batch_matches_uncached_kernels(self):
        _X, y, constraints = _setup(seed=3)
        rng = np.random.default_rng(4)
        evaluator = CompiledEvaluator(constraints, y)
        preds = rng.integers(0, 2, size=(5, len(y)))
        preds[3] = preds[0]                      # in-batch duplicate
        disparities, accuracies = evaluator.score_batch(preds)
        assert np.array_equal(
            disparities, evaluator.disparities_batch(preds)
        )
        assert np.array_equal(
            accuracies, evaluator.accuracies_batch(preds)
        )
        assert evaluator.stats["hits"] == 1
        assert evaluator.stats["lookups"] == 5
        # scoring the same rows again is all hits
        d2, a2 = evaluator.score_batch(preds[:2])
        assert np.array_equal(d2, disparities[:2])
        assert np.array_equal(a2, accuracies[:2])
        assert evaluator.stats["hits"] == 3

    def test_single_score_uses_cache(self):
        _X, y, constraints = _setup(seed=5)
        stats = {"hits": 0, "lookups": 0}
        evaluator = CompiledEvaluator(constraints, y, stats=stats)
        pred = np.zeros(len(y), dtype=np.int64)
        d1, a1 = evaluator.score(pred)
        d2, a2 = evaluator.score(pred)
        assert np.array_equal(d1, d2) and a1 == a2
        assert stats == {"hits": 1, "lookups": 2}


class TestWarmStartBypassWarning:
    def test_warns_once_and_records_serial_path(self):
        X, y, constraints = _setup()
        fitter = WeightedFitter(
            GaussianNaiveBayes(), X, y, constraints, warm_start=True,
        )
        L = np.array([[0.0, 0.0], [0.3, -0.2]])
        with pytest.warns(RuntimeWarning, match="warm_start"):
            fitter.fit_batch(L)
        assert fitter.fit_paths.get("batch_protocol", 0) == 0
        assert fitter.fit_paths.get("serial", 0) == len(L)
        with warnings.catch_warnings():
            warnings.simplefilter("error")       # second call stays silent
            fitter.fit_batch(np.array([[0.1, 0.1]]))

    def test_no_warning_without_warm_start(self):
        X, y, constraints = _setup()
        fitter = WeightedFitter(GaussianNaiveBayes(), X, y, constraints)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fitter.fit_batch(np.array([[0.0, 0.0], [0.3, -0.2]]))
        assert fitter.fit_paths.get("batch_protocol", 0) == 2


class TestPoolInvalidation:
    def test_pool_reinitialized_when_training_matrix_changes(self):
        # regression test: _pool_init pins X globally in the workers, so
        # toggling use_subsample between fit_batch calls must rebuild
        # the pool — a stale pool would train on the wrong matrix.
        X, y, constraints = _setup(n=160)
        est = LogisticRegression(max_iter=20)    # lbfgs: no batch hook
        pooled = WeightedFitter(
            est.clone(), X, y, constraints, subsample=0.5, n_jobs=2,
            fit_cache=False,
        )
        serial = WeightedFitter(
            est.clone(), X, y, constraints, subsample=0.5,
            fit_cache=False,
        )
        L = np.array([[0.3, 0.0], [-0.4, 0.2]])
        try:
            for use_subsample in (False, True, False):
                got = pooled.fit_batch(L, use_subsample=use_subsample)
                want = [
                    serial.fit(L[b], use_subsample=use_subsample)
                    for b in range(len(L))
                ]
                X_eval = X if not use_subsample else X[pooled._sub_idx]
                for g, w_model in zip(got, want):
                    assert np.array_equal(
                        g.predict(X_eval), w_model.predict(X_eval)
                    )
        finally:
            pooled.close()

    def test_pool_key_tracks_matrix_identity(self):
        X, y, constraints = _setup(n=120)
        fitter = WeightedFitter(
            LogisticRegression(max_iter=15), X, y, constraints,
            subsample=0.5, n_jobs=2, fit_cache=False,
        )
        try:
            pool_full = fitter._get_pool(2, fitter.X_train)
            key_full = fitter._pool_key
            X_sub = fitter.X_train[fitter._sub_idx]
            pool_sub = fitter._get_pool(2, X_sub)
            assert fitter._pool_key != key_full
            assert pool_sub is not pool_full
        finally:
            fitter.close()


class TestReportAndCli:
    def _dataset(self):
        return make_biased_dataset(
            "cache-test", 1600, ("a", "b"), (0.6, 0.4), (0.5, 0.34),
            seed=2, n_informative=2, n_group_correlated=1, n_noise=1,
            n_categorical=0,
        )

    def test_report_exposes_cache_counters(self):
        data = self._dataset()
        strat = data.sensitive * 2 + data.y
        tr, va, _te = train_val_test_split(len(data), seed=0, stratify=strat)
        train, val = data.subset(tr), data.subset(va)
        fair = Engine("grid", grid_steps=6).solve(
            Problem("SP <= 0.12 and MR <= 0.3"), GaussianNaiveBayes(),
            train, val,
        )
        report = fair.report
        assert report.fit_cache_lookups >= report.n_fits - 1
        assert report.eval_cache_lookups > 0
        assert report.fit_cache_hits >= 0
        assert sum(report.fit_paths.values()) >= report.n_fits
        assert report.fit_paths.get("batch_protocol", 0) > 0
        assert "caches:" in report.summary()

    def test_cli_prints_cache_line(self):
        out = io.StringIO()
        code = main(
            [
                "train", "--dataset", "compas", "--two-group",
                "--spec", "SP <= 0.1", "--rows", "1200",
                "--engine", "compiled",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0, text
        assert "caches: fit " in text and "eval " in text

    def test_cli_no_fit_cache_flag(self):
        out = io.StringIO()
        code = main(
            [
                "train", "--dataset", "compas", "--two-group",
                "--spec", "SP <= 0.1", "--rows", "1200", "--no-fit-cache",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0, text
        assert "caches: fit 0/0 hits" in text
