"""Shared fixtures: small, fast synthetic datasets and split triples."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_biased_dataset
from repro.ml.model_selection import train_val_test_split


@pytest.fixture(scope="session")
def two_group_data():
    """Small biased 2-group dataset (n=600) used across core tests."""
    return make_biased_dataset(
        "toy2",
        n=600,
        group_names=("A", "B"),
        group_proportions=(0.6, 0.4),
        group_base_rates=(0.55, 0.30),
        separation=0.8,
        seed=7,
    )


@pytest.fixture(scope="session")
def three_group_data():
    """Small 3-group dataset for multi-constraint tests."""
    return make_biased_dataset(
        "toy3",
        n=900,
        group_names=("A", "B", "C"),
        group_proportions=(0.5, 0.3, 0.2),
        group_base_rates=(0.55, 0.40, 0.35),
        separation=0.7,
        seed=11,
    )


def _split(dataset, seed=3):
    strat = dataset.sensitive * 2 + dataset.y
    tr, va, te = train_val_test_split(len(dataset), seed=seed, stratify=strat)
    return dataset.subset(tr), dataset.subset(va), dataset.subset(te)


@pytest.fixture(scope="session")
def two_group_splits(two_group_data):
    return _split(two_group_data)


@pytest.fixture(scope="session")
def three_group_splits(three_group_data):
    return _split(three_group_data)


@pytest.fixture(scope="session")
def xy_separable():
    """Linearly separable binary classification arrays."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 4))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(np.int64)
    return X, y


@pytest.fixture(scope="session")
def xy_noisy():
    """Noisy (non-separable) classification arrays."""
    rng = np.random.default_rng(1)
    X = rng.normal(size=(400, 5))
    y = (X[:, 0] + rng.normal(scale=1.0, size=400) > 0).astype(np.int64)
    return X, y
