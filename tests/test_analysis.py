"""Tests for the experiment harness (runner, trade-off sweeps, reporting)."""

import numpy as np
import pytest

from repro.analysis import (
    baseline_frontier,
    format_percent,
    format_series,
    format_table,
    make_estimator,
    omnifair_frontier,
    run_baseline,
    run_omnifair,
    run_unconstrained,
)
from repro.baselines import Reweighing, SeldonianClassifier
from repro.ml import LogisticRegression


class TestMakeEstimator:
    @pytest.mark.parametrize("name", ["LR", "RF", "XGB", "NN"])
    def test_all_four_algorithms(self, name):
        est = make_estimator(name)
        assert hasattr(est, "fit")

    def test_case_insensitive(self):
        assert make_estimator("lr").__class__.__name__ == "LogisticRegression"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            make_estimator("SVM2000")


class TestRunner:
    def test_unconstrained_aggregate(self, two_group_data):
        agg = run_unconstrained(
            two_group_data, LogisticRegression(max_iter=150), n_splits=2
        )
        assert agg.n_feasible == 2
        assert 0.5 < agg.accuracy <= 1.0
        assert agg.disparity > 0.05  # the data is biased

    def test_omnifair_reduces_disparity(self, two_group_data):
        base = run_unconstrained(
            two_group_data, LogisticRegression(max_iter=150), n_splits=2
        )
        fair = run_omnifair(
            two_group_data, LogisticRegression(max_iter=150),
            epsilon=0.05, n_splits=2,
        )
        assert fair.disparity < base.disparity
        assert fair.accuracy <= base.accuracy + 0.02

    def test_baseline_runner(self, two_group_data):
        agg = run_baseline(
            Reweighing, two_group_data,
            estimator=LogisticRegression(max_iter=150), n_splits=2,
        )
        assert agg.method == "Kamiran"
        assert agg.n_feasible == 2

    def test_unsupported_becomes_na(self, two_group_data):
        # Seldonian rejects an external estimator -> all splits infeasible
        agg = run_baseline(
            SeldonianClassifier, two_group_data,
            estimator=LogisticRegression(), n_splits=2,
        )
        assert agg.n_feasible == 0
        assert not agg.supported
        assert np.isnan(agg.accuracy)

    def test_runtime_recorded(self, two_group_data):
        agg = run_unconstrained(
            two_group_data, LogisticRegression(max_iter=150), n_splits=2
        )
        assert agg.runtime > 0


class TestFrontiers:
    def test_omnifair_frontier_monotone_knob(self, two_group_splits):
        train, val, test = two_group_splits
        points = omnifair_frontier(
            train, val, test, LogisticRegression(max_iter=150),
            epsilons=[0.02, 0.1, 0.3],
        )
        assert len(points) >= 2
        # tighter epsilon -> (weakly) lower test accuracy on average
        assert points[0].accuracy <= points[-1].accuracy + 0.05

    def test_baseline_frontier_kamiran(self, two_group_splits):
        train, val, test = two_group_splits
        points = baseline_frontier(
            "kamiran", train, val, test,
            estimator=LogisticRegression(max_iter=150),
            knobs=[0.0, 1.0],
        )
        assert len(points) == 2
        # full repair is fairer than no repair
        assert points[1].disparity < points[0].disparity

    def test_baseline_frontier_unknown_name(self, two_group_splits):
        train, val, test = two_group_splits
        with pytest.raises(KeyError, match="unknown baseline"):
            baseline_frontier("mystery", train, val, test)

    def test_zafar_frontier_runs(self, two_group_splits):
        train, val, test = two_group_splits
        points = baseline_frontier(
            "zafar", train, val, test, knobs=[0.0, 1.0]
        )
        assert len(points) == 2


class TestReporting:
    def test_format_percent(self):
        assert format_percent(0.0123) == "+1.2%"
        assert format_percent(-0.05) == "-5.0%"
        assert format_percent(float("nan")) == "NA"
        assert format_percent(0.5, signed=False) == "50.0%"

    def test_format_table_alignment(self):
        out = format_table(
            ["a", "method"], [["1", "OmniFair"], ["22", "x"]], title="T"
        )
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "OmniFair" in out
        # all rows same width
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_format_series(self):
        from repro.analysis import FrontierPoint

        p = FrontierPoint(knob=0.1, disparity=0.05, accuracy=0.8, roc_auc=0.7)
        out = format_series("OmniFair", [p])
        assert out.startswith("OmniFair:")
        assert "(0.050, 0.800)" in out

    def test_format_series_empty(self):
        assert "not supported" in format_series("Zafar", [])
